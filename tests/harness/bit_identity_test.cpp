/**
 * @file
 * Trial bit-identity pins for determinism-sensitive refactors.
 *
 * Each golden fingerprint below was captured from runTrial() BEFORE a
 * container/bookkeeping refactor and must stay byte-for-byte stable
 * after it. The hash covers only integral TrialResult fields (times,
 * fault counters, per-thread integer series), so it is independent of
 * host FP quirks and of how aggregates are summarized.
 *
 * Pinned refactors:
 *  - PR 5: MemoryManager::ioWaiters_ moved from std::unordered_map
 *    with pointer-value hashing to an ordered std::map keyed by
 *    (AddressSpace::id(), vpn). The waiter map feeds wake order and
 *    the audit walk; these fingerprints prove the swap changed
 *    nothing observable.
 *
 * If a fingerprint changes, the refactor being tested altered
 * simulated behavior: find the divergence, don't re-record. Only
 * re-record (instructions below) when a DELIBERATE model change
 * invalidates the pins, and say so in the commit message.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "harness/experiment.hh"

namespace pagesim
{
namespace
{

/** FNV-1a over a stream of 64-bit words. */
class Fnv
{
  public:
    void
    add(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            hash_ ^= (v >> (8 * i)) & 0xff;
            hash_ *= 0x100000001b3ull;
        }
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

/** Hash every integral field a trial reports. */
std::uint64_t
fingerprint(const TrialResult &r)
{
    Fnv h;
    h.add(r.runtimeNs);
    h.add(r.majorFaults);

    h.add(r.kernel.majorFaults);
    h.add(r.kernel.minorFaults);
    h.add(r.kernel.ioWaitFaults);
    h.add(r.kernel.evictions);
    h.add(r.kernel.dirtyWritebacks);
    h.add(r.kernel.cleanDrops);
    h.add(r.kernel.writebackRemaps);
    h.add(r.kernel.readaheadReads);
    h.add(r.kernel.readaheadHits);
    h.add(r.kernel.directReclaims);
    h.add(r.kernel.directAging);
    h.add(r.kernel.allocStalls);

    h.add(r.policy.ptesScanned);
    h.add(r.policy.regionsVisited);
    h.add(r.policy.regionsSkipped);
    h.add(r.policy.rmapWalks);
    h.add(r.policy.promotions);
    h.add(r.policy.demotions);
    h.add(r.policy.agingPasses);
    h.add(r.policy.evicted);
    h.add(r.policy.refaults);
    h.add(r.policy.secondChances);

    h.add(r.swap.reads);
    h.add(r.swap.writes);
    h.add(r.swap.totalReadLatency);
    h.add(r.swap.totalWriteLatency);
    h.add(r.swap.peakQueueDepth);

    h.add(r.mglru.genCreations);
    h.add(r.mglru.genCreationBlocked);
    h.add(r.mglru.bloomInsertions);
    h.add(r.mglru.neighborScans);
    h.add(r.mglru.neighborPromotions);
    h.add(r.mglru.tierProtected);
    h.add(r.mglru.staleRefaults);
    h.add(r.mglru.lateGenCreations);

    for (SimTime t : r.threadFinishNs)
        h.add(t);
    for (std::uint64_t f : r.threadBlockedFaults)
        h.add(f);

    h.add(r.kswapdCpuNs);
    h.add(r.agingCpuNs);
    h.add(r.agingPasses);
    return h.value();
}

std::uint64_t
run(WorkloadKind wl, PolicyKind policy)
{
    ExperimentConfig cfg;
    cfg.workload = wl;
    cfg.policy = policy;
    cfg.swap = SwapKind::Ssd; // async device: exercises ioWaiters_
    cfg.capacityRatio = 0.5;
    cfg.scale = ScalePreset::Small;
    cfg.baseSeed = 12345;
    return fingerprint(runTrial(cfg, /*trial_seed=*/12345));
}

/*
 * To re-record after a deliberate model change:
 *   build/tests/harness_test --gtest_filter='BitIdentity.*' and copy
 * the "actual" value from each failure message into the pins.
 */

TEST(BitIdentity, YcsbAMgLruSsdPinned)
{
    EXPECT_EQ(run(WorkloadKind::YcsbA, PolicyKind::MgLru),
              14737800276040979591ull);
}

TEST(BitIdentity, YcsbAClockSsdPinned)
{
    EXPECT_EQ(run(WorkloadKind::YcsbA, PolicyKind::Clock),
              2700564566422927531ull);
}

TEST(BitIdentity, PageRankMgLruSsdPinned)
{
    EXPECT_EQ(run(WorkloadKind::PageRank, PolicyKind::MgLru),
              15287283016998830679ull);
}

/*
 * PR 6 pin: the SoA metadata + sharded-scan refactor, captured on a
 * 1M-page (4 GiB) YCSB machine — large enough that the aging scan
 * crosses many shards and the sharded slicing/merge logic carries the
 * whole trial. Runs the same trial twice, serial and sharded, and
 * checks both against the recorded value: a fingerprint mismatch
 * means the refactor altered simulated behavior; a serial/sharded
 * split means the sharded walk diverged from the contract.
 */
TEST(BitIdentity, Big1MSerialAndShardedPinned)
{
    ExperimentConfig cfg;
    cfg.workload = WorkloadKind::YcsbA;
    cfg.policy = PolicyKind::MgLru;
    cfg.swap = SwapKind::Ssd;
    cfg.capacityRatio = 0.5;
    cfg.scale = ScalePreset::Big1M;
    cfg.baseSeed = 12345;

    cfg.mgTweak = [](MgLruConfig &mg) {
        mg.shardedScan = false;
    };
    const std::uint64_t serial = fingerprint(runTrial(cfg, 12345));

    cfg.mgTweak = [](MgLruConfig &mg) {
        mg.shardedScan = true;
        mg.scanWorkers = 4;
    };
    const std::uint64_t sharded = fingerprint(runTrial(cfg, 12345));

    EXPECT_EQ(serial, 15456000562956673319ull);
    EXPECT_EQ(sharded, serial);
}

} // namespace
} // namespace pagesim
