/**
 * @file
 * Checkpoint/restore enforcement: fast-forwarded trials must be
 * BIT-IDENTICAL to straight-through execution.
 *
 * The contract under test (DESIGN.md Sec. 4h): capturing a snapshot at
 * a quiescent boundary and running `restore + run(t..end)` reproduces
 * the straight-through TrialResult exactly — same fingerprint the
 * bit-identity pins use, across policies, swap backends, and the
 * multi-memcg colocation harness. Corruption tests pin the failure
 * side: a damaged image is rejected with a structured error and ZERO
 * partial state applied (the same rig still accepts the pristine
 * image afterwards).
 *
 * The pinned constant below is the SAME value as BitIdentity's
 * YcsbAMgLruSsdPinned: fast-forward must not move an existing pin.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "harness/checkpoint.hh"
#include "harness/sweep.hh"
#include "harness/trial_rig.hh"
#include "kernel/memory_manager.hh"

namespace pagesim
{
namespace
{

constexpr std::uint64_t kMaxEvents = 2000000000ull;

/** FNV-1a over 64-bit words, same formulation as bit_identity_test. */
class Fnv
{
  public:
    void
    add(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            hash_ ^= (v >> (8 * i)) & 0xff;
            hash_ *= 0x100000001b3ull;
        }
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

/** Hash every integral field a trial reports (bit_identity's set). */
std::uint64_t
fingerprint(const TrialResult &r)
{
    Fnv h;
    h.add(r.runtimeNs);
    h.add(r.majorFaults);

    h.add(r.kernel.majorFaults);
    h.add(r.kernel.minorFaults);
    h.add(r.kernel.ioWaitFaults);
    h.add(r.kernel.evictions);
    h.add(r.kernel.dirtyWritebacks);
    h.add(r.kernel.cleanDrops);
    h.add(r.kernel.writebackRemaps);
    h.add(r.kernel.readaheadReads);
    h.add(r.kernel.readaheadHits);
    h.add(r.kernel.directReclaims);
    h.add(r.kernel.directAging);
    h.add(r.kernel.allocStalls);

    h.add(r.policy.ptesScanned);
    h.add(r.policy.regionsVisited);
    h.add(r.policy.regionsSkipped);
    h.add(r.policy.rmapWalks);
    h.add(r.policy.promotions);
    h.add(r.policy.demotions);
    h.add(r.policy.agingPasses);
    h.add(r.policy.evicted);
    h.add(r.policy.refaults);
    h.add(r.policy.secondChances);

    h.add(r.swap.reads);
    h.add(r.swap.writes);
    h.add(r.swap.totalReadLatency);
    h.add(r.swap.totalWriteLatency);
    h.add(r.swap.peakQueueDepth);

    h.add(r.mglru.genCreations);
    h.add(r.mglru.genCreationBlocked);
    h.add(r.mglru.bloomInsertions);
    h.add(r.mglru.neighborScans);
    h.add(r.mglru.neighborPromotions);
    h.add(r.mglru.tierProtected);
    h.add(r.mglru.staleRefaults);
    h.add(r.mglru.lateGenCreations);

    for (SimTime t : r.threadFinishNs)
        h.add(t);
    for (std::uint64_t f : r.threadBlockedFaults)
        h.add(f);

    h.add(r.kswapdCpuNs);
    h.add(r.agingCpuNs);
    h.add(r.agingPasses);
    return h.value();
}

ExperimentConfig
smallConfig(WorkloadKind wl, PolicyKind policy, SwapKind swap)
{
    ExperimentConfig cfg;
    cfg.workload = wl;
    cfg.policy = policy;
    cfg.swap = swap;
    cfg.capacityRatio = 0.5;
    cfg.scale = ScalePreset::Small;
    cfg.baseSeed = 12345;
    return cfg;
}

/**
 * The core differential: straight-through vs cold-checkpointed (the
 * capture pass itself must not perturb the trial) vs warm-restored
 * (the second identical call must come off the cache and still match).
 * Returns the straight-through fingerprint so callers can pin it.
 */
std::uint64_t
expectFastForwardIdentity(ExperimentConfig cfg, std::uint64_t seed)
{
    const std::string tag = cfg.label() + " seed " + std::to_string(seed);
    cfg.warmupRefs = 0;
    cfg.checkpointAt = 0;
    const TrialResult straight = runTrial(cfg, seed);
    const std::uint64_t want = fingerprint(straight);

    // Self-calibrating boundary: mid-trial by workload progress.
    EXPECT_GT(straight.totalTouches, 0u) << tag;
    cfg.checkpointAt = straight.totalTouches / 2;

    CheckpointCache &cache = CheckpointCache::instance();
    cache.clear();
    const TrialResult cold = runTrial(cfg, seed);
    EXPECT_EQ(cache.misses(), 1u) << tag;
    const TrialResult warm = runTrial(cfg, seed);
    EXPECT_GE(cache.hits(), 1u)
        << tag << ": the restore path never ran — boundary unreachable?";

    EXPECT_EQ(fingerprint(cold), want)
        << tag << ": capturing a checkpoint perturbed the trial";
    EXPECT_EQ(fingerprint(warm), want)
        << tag << ": restore diverged from straight-through execution";
    EXPECT_EQ(cold.totalTouches, straight.totalTouches) << tag;
    EXPECT_EQ(warm.totalTouches, straight.totalTouches) << tag;
    return want;
}

TEST(CheckpointIdentity, PinnedYcsbAMgLruSsd)
{
    // Must equal BitIdentity.YcsbAMgLruSsdPinned: the fast-forward
    // machinery may not move an existing pin, cold or warm.
    EXPECT_EQ(expectFastForwardIdentity(
                  smallConfig(WorkloadKind::YcsbA, PolicyKind::MgLru,
                              SwapKind::Ssd),
                  12345),
              14737800276040979591ull);
}

TEST(CheckpointIdentity, DifferentialAcrossPoliciesAndBackends)
{
    // ISSUE acceptance: bit-identical across >= 2 policies and both
    // swap backends, at seeds unrelated to the pinned one.
    std::uint64_t seed = 909090;
    for (PolicyKind policy : {PolicyKind::MgLru, PolicyKind::Clock}) {
        for (SwapKind swap : {SwapKind::Ssd, SwapKind::Zram}) {
            expectFastForwardIdentity(
                smallConfig(WorkloadKind::YcsbA, policy, swap), seed);
            seed += 7777;
        }
    }
}

TEST(CheckpointIdentity, DifferentialAcrossWorkloads)
{
    // Barrier-carrying (PageRank) and scan-heavy (TPC-H) workloads
    // exercise serialization surfaces YCSB never touches: barrier
    // membership and file-buffer cursors.
    expectFastForwardIdentity(smallConfig(WorkloadKind::PageRank,
                                          PolicyKind::MgLru,
                                          SwapKind::Ssd),
                              31415);
    expectFastForwardIdentity(smallConfig(WorkloadKind::Tpch,
                                          PolicyKind::Clock,
                                          SwapKind::Zram),
                              27182);
}

std::vector<std::uint64_t>
tenantFingerprints(const ColocationTrialResult &trial)
{
    std::vector<std::uint64_t> fps;
    for (const TenantResult &t : trial.tenants)
        fps.push_back(tenantFingerprint(t));
    return fps;
}

TEST(CheckpointIdentity, ColocationDifferential)
{
    // Multi-memcg machine: per-tenant lruvecs, the balloon space, and
    // tenant-major actor ordering all cross the snapshot boundary.
    ColocationConfig config;
    TenantSpec ycsb;
    ycsb.name = "ycsb";
    ycsb.workload = WorkloadKind::YcsbA;
    ycsb.lowRatio = 0.5;
    TenantSpec tpch;
    tpch.name = "tpch";
    tpch.workload = WorkloadKind::Tpch;
    tpch.maxRatio = 0.6;
    config.tenants = {ycsb, tpch};
    config.capacityRatio = 0.5;

    const ColocationTrialResult straight = runColocationTrial(config, 7);
    const std::vector<std::uint64_t> want = tenantFingerprints(straight);
    ASSERT_GT(straight.totalTouches, 0u);
    config.checkpointAt = straight.totalTouches / 2;

    CheckpointCache &cache = CheckpointCache::instance();
    cache.clear();
    const ColocationTrialResult cold = runColocationTrial(config, 7);
    const ColocationTrialResult warm = runColocationTrial(config, 7);
    EXPECT_GE(cache.hits(), 1u) << "colocation restore path never ran";
    EXPECT_EQ(tenantFingerprints(cold), want);
    EXPECT_EQ(tenantFingerprints(warm), want);
    EXPECT_EQ(warm.totalTouches, straight.totalTouches);
}

TEST(CheckpointWarmup, FunctionalWarmupDeterministicAndCacheable)
{
    ExperimentConfig cfg = smallConfig(WorkloadKind::YcsbA,
                                       PolicyKind::MgLru, SwapKind::Ssd);
    const TrialResult straight = runTrial(cfg, 12345);
    ASSERT_GT(straight.totalTouches, 0u);
    cfg.warmupRefs = straight.totalTouches / 2;

    // Functional-only warmup is a deliberate MODEL change (the warmup
    // prefix runs at zero device detail), so it shifts timing relative
    // to straight execution — but it must shift it deterministically.
    CheckpointCache::instance().clear();
    const TrialResult a = runTrial(cfg, 12345);
    const TrialResult b = runTrial(cfg, 12345);
    EXPECT_EQ(fingerprint(a), fingerprint(b));
    EXPECT_NE(fingerprint(a), fingerprint(straight))
        << "functional warmup should suppress device detail";
    // (totalTouches may legitimately differ from the straight run:
    // zero-detail faults change thread interleaving, and YCSB's touch
    // count per op depends on the shared-structure layout that
    // interleaving produces. Determinism, not equality, is the
    // contract here.)

    // And it composes with checkpointing: a restore of the warmed
    // boundary reproduces the warmed run exactly.
    cfg.checkpointAt = cfg.warmupRefs;
    CheckpointCache::instance().clear();
    const TrialResult cold = runTrial(cfg, 12345);
    const TrialResult warm = runTrial(cfg, 12345);
    EXPECT_GE(CheckpointCache::instance().hits(), 1u);
    EXPECT_EQ(fingerprint(cold), fingerprint(a));
    EXPECT_EQ(fingerprint(warm), fingerprint(a));
}

TEST(CheckpointSweep, WarmSweepRestoresInsteadOfResimulating)
{
    // A fig06-style capacity grid: each cell re-runs the same workload
    // prefix per (cell, seed). The first sweep populates the cache;
    // repeating it must restore every trial and change nothing.
    ExperimentConfig probe = smallConfig(WorkloadKind::YcsbA,
                                         PolicyKind::MgLru, SwapKind::Ssd);
    const std::uint64_t touches =
        runTrial(probe, trialSeed(probe, 0)).totalTouches;
    ASSERT_GT(touches, 0u);

    std::vector<ExperimentConfig> cells;
    for (double capacity : {0.5, 0.7}) {
        ExperimentConfig cell = probe;
        cell.capacityRatio = capacity;
        cell.trials = 2;
        cell.checkpointAt = touches / 2;
        cells.push_back(cell);
    }

    CheckpointCache &cache = CheckpointCache::instance();
    cache.clear();
    SweepOptions serial;
    serial.workers = 1;
    const std::vector<ExperimentResult> cold = runSweep(cells, serial);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 4u) << "2 cells x 2 trials, all cold";

    const std::vector<ExperimentResult> warm = runSweep(cells, serial);
    EXPECT_EQ(cache.hits(), 4u) << "every warm trial must restore";

    ASSERT_EQ(cold.size(), warm.size());
    for (std::size_t c = 0; c < cold.size(); ++c) {
        ASSERT_EQ(cold[c].trials.size(), warm[c].trials.size());
        for (std::size_t t = 0; t < cold[c].trials.size(); ++t)
            EXPECT_EQ(fingerprint(cold[c].trials[t]),
                      fingerprint(warm[c].trials[t]))
                << "cell " << c << " trial " << t;
    }
    cache.clear();
}

TEST(CheckpointSweep, DiskCacheSurvivesInMemoryClear)
{
    // PAGESIM_CHECKPOINT_DIR: the warmup must survive a process
    // boundary, modeled here by dropping the in-memory map.
    const std::string dir = ::testing::TempDir() + "pagesim-ckpt-disk";
    setenv("PAGESIM_CHECKPOINT_DIR", dir.c_str(), 1);

    ExperimentConfig cfg = smallConfig(WorkloadKind::YcsbA,
                                       PolicyKind::MgLru, SwapKind::Ssd);
    const TrialResult straight = runTrial(cfg, 555);
    ASSERT_GT(straight.totalTouches, 0u);
    cfg.checkpointAt = straight.totalTouches / 2;

    CheckpointCache &cache = CheckpointCache::instance();
    cache.clear();
    const TrialResult cold = runTrial(cfg, 555); // persists to dir
    cache.clear();                               // memory gone, disk stays
    const TrialResult warm = runTrial(cfg, 555);
    EXPECT_GE(cache.diskLoads(), 1u)
        << "warm run should have loaded the on-disk checkpoint";
    EXPECT_EQ(fingerprint(cold), fingerprint(straight));
    EXPECT_EQ(fingerprint(warm), fingerprint(straight));

    unsetenv("PAGESIM_CHECKPOINT_DIR");
    cache.clear();
}

TEST(CheckpointCache, PrefixHashCoversMachineShapeOnly)
{
    const ExperimentConfig base = smallConfig(
        WorkloadKind::YcsbA, PolicyKind::MgLru, SwapKind::Ssd);
    const std::uint64_t h = configPrefixHash(base);

    // Machine-shaping fields move the hash...
    ExperimentConfig changed = base;
    changed.capacityRatio = 0.7;
    EXPECT_NE(configPrefixHash(changed), h);
    changed = base;
    changed.policy = PolicyKind::Clock;
    EXPECT_NE(configPrefixHash(changed), h);
    changed = base;
    changed.warmupRefs = 1000;
    EXPECT_NE(configPrefixHash(changed), h)
        << "functional warmup changes the machine's evolution";

    // ...fields keyed elsewhere (or not perturbing the prefix) do not.
    changed = base;
    changed.trials = 9;
    changed.baseSeed = 42;
    changed.checkpointAt = 1234;
    EXPECT_EQ(configPrefixHash(changed), h)
        << "trials/seed/boundary are keyed outside the prefix hash";
}

// ---------------------------------------------------------------------
// Corruption: every damaged image is rejected with the right structured
// error, and a rejected restore applies ZERO state.
// ---------------------------------------------------------------------

/** Build a rig, park it at @p boundary refs, capture a checkpoint. */
Checkpoint
captureAtBoundary(const ExperimentConfig &cfg, std::uint64_t seed,
                  std::uint64_t boundary)
{
    TrialRigOptions opts;
    opts.deferObservers = true;
    TrialRig rig(cfg, seed, opts);
    std::uint64_t used = 0;
    EXPECT_TRUE(rig.runToBoundary(boundary, kMaxEvents, used));
    Checkpoint ckpt;
    const CheckpointError err = captureCheckpoint(
        rig.view(), configPrefixHash(cfg), seed, boundary, ckpt);
    EXPECT_TRUE(err.ok()) << err.message;
    return ckpt;
}

TEST(CheckpointCorruption, RejectedImagesApplyNothing)
{
    const ExperimentConfig cfg = smallConfig(
        WorkloadKind::YcsbA, PolicyKind::MgLru, SwapKind::Ssd);
    const std::uint64_t seed = 12345;
    const std::uint64_t hash = configPrefixHash(cfg);
    const TrialResult straight = runTrial(cfg, seed);
    ASSERT_GT(straight.totalTouches, 0u);
    const Checkpoint good =
        captureAtBoundary(cfg, seed, straight.totalTouches / 2);
    ASSERT_GT(good.bytes.size(), 64u);

    // Fixed image offsets (format frozen at kCheckpointVersion = 1):
    // magic u64 @0, version u32 @8, first section's name-length u32
    // @48 and name bytes @52 ("sim").
    ASSERT_EQ(good.bytes[8], 1u) << "version field moved?";
    ASSERT_EQ(good.bytes[48], 3u) << "first section name-length moved?";
    ASSERT_EQ(good.bytes[52], static_cast<std::uint8_t>('s'));

    struct Case
    {
        const char *name;
        void (*corrupt)(std::vector<std::uint8_t> &);
        CheckpointError::Kind want;
    };
    const Case cases[] = {
        {"truncated-header",
         [](std::vector<std::uint8_t> &b) { b.resize(10); },
         CheckpointError::Kind::Truncated},
        {"truncated-payload",
         [](std::vector<std::uint8_t> &b) { b.resize(b.size() - 5); },
         CheckpointError::Kind::Truncated},
        {"bad-magic",
         [](std::vector<std::uint8_t> &b) { b[0] ^= 0xff; },
         CheckpointError::Kind::BadMagic},
        {"version-skew",
         [](std::vector<std::uint8_t> &b) { b[8] = 2; },
         CheckpointError::Kind::VersionMismatch},
        {"flipped-payload-byte",
         [](std::vector<std::uint8_t> &b) { b[b.size() - 1] ^= 0x01; },
         CheckpointError::Kind::FingerprintMismatch},
        {"renamed-section",
         [](std::vector<std::uint8_t> &b) { b[52] = 'x'; },
         CheckpointError::Kind::SectionMissing},
    };

    for (const Case &c : cases) {
        Checkpoint bad = good;
        c.corrupt(bad.bytes);

        TrialRigOptions opts;
        opts.forRestore = true;
        opts.deferObservers = true;
        TrialRig rig(cfg, seed, opts);
        const CheckpointError err =
            restoreCheckpoint(rig.view(), hash, seed, bad);
        EXPECT_EQ(err.kind, c.want) << c.name;
        EXPECT_FALSE(err.message.empty()) << c.name;

        // Zero partial state: the SAME rig still restores cleanly from
        // the pristine image — a half-applied reject would not.
        const CheckpointError retry =
            restoreCheckpoint(rig.view(), hash, seed, good);
        EXPECT_TRUE(retry.ok()) << c.name << ": " << retry.message;
    }

    // Key mismatches are structured too: wrong producer config...
    {
        TrialRigOptions opts;
        opts.forRestore = true;
        opts.deferObservers = true;
        TrialRig rig(cfg, seed, opts);
        EXPECT_EQ(restoreCheckpoint(rig.view(), hash ^ 1, seed, good)
                      .kind,
                  CheckpointError::Kind::ConfigMismatch);
        // ...or wrong trial seed.
        EXPECT_EQ(restoreCheckpoint(rig.view(), hash, seed + 1, good)
                      .kind,
                  CheckpointError::Kind::ConfigMismatch);
    }
}

TEST(CheckpointCorruption, FileRoundTripAndDiskErrors)
{
    const ExperimentConfig cfg = smallConfig(
        WorkloadKind::YcsbA, PolicyKind::MgLru, SwapKind::Ssd);
    const std::uint64_t seed = 12345;
    const TrialResult straight = runTrial(cfg, seed);
    const Checkpoint good =
        captureAtBoundary(cfg, seed, straight.totalTouches / 2);

    const std::string path =
        ::testing::TempDir() + "pagesim-ckpt-roundtrip.bin";
    ASSERT_TRUE(saveCheckpointFile(path, good).ok());

    Checkpoint loaded;
    const CheckpointError err = loadCheckpointFile(path, loaded);
    ASSERT_TRUE(err.ok()) << err.message;
    EXPECT_EQ(loaded.bytes, good.bytes);
    EXPECT_EQ(loaded.configHash, good.configHash);
    EXPECT_EQ(loaded.seed, good.seed);
    EXPECT_EQ(loaded.when, good.when);
    EXPECT_EQ(loaded.refs, good.refs);

    // A file truncated on disk fails at LOAD time, with the full
    // fingerprint sweep — restore never sees a corrupt image.
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char *>(good.bytes.data()),
                  static_cast<std::streamsize>(good.bytes.size() / 2));
    }
    Checkpoint half;
    EXPECT_EQ(loadCheckpointFile(path, half).kind,
              CheckpointError::Kind::Truncated);

    Checkpoint missing;
    EXPECT_EQ(loadCheckpointFile(::testing::TempDir() +
                                     "pagesim-ckpt-does-not-exist.bin",
                                 missing)
                  .kind,
              CheckpointError::Kind::Io);
    std::remove(path.c_str());
}

TEST(CheckpointCorruption, CaptureRefusedOffQuiescentPoint)
{
    // A live metrics collector schedules sampler events the image
    // cannot carry; capture must refuse rather than emit a snapshot
    // that restores into a different event population.
    ExperimentConfig cfg = smallConfig(WorkloadKind::YcsbA,
                                       PolicyKind::MgLru, SwapKind::Ssd);
    cfg.metrics.mode = MetricsMode::Counters;
    TrialRig rig(cfg, 12345, TrialRigOptions{});
    Checkpoint out;
    const CheckpointError err =
        captureCheckpoint(rig.view(), configPrefixHash(cfg), 12345, 0, out);
    EXPECT_EQ(err.kind, CheckpointError::Kind::NotQuiescent);
    EXPECT_FALSE(err.message.empty());
}

} // namespace
} // namespace pagesim
