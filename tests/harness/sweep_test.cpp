#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "harness/sweep.hh"
#include "sim/parallel.hh"

namespace pagesim
{
namespace
{

std::vector<ExperimentConfig>
smallCells()
{
    std::vector<ExperimentConfig> cells;
    ExperimentConfig base;
    base.scale = ScalePreset::Small;
    base.trials = 2;
    for (WorkloadKind wk :
         {WorkloadKind::Tpch, WorkloadKind::PageRank}) {
        base.workload = wk;
        for (PolicyKind pk : {PolicyKind::Clock, PolicyKind::MgLru}) {
            base.policy = pk;
            cells.push_back(base);
        }
    }
    return cells;
}

void
expectSameResults(const std::vector<ExperimentResult> &a,
                  const std::vector<ExperimentResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t c = 0; c < a.size(); ++c) {
        ASSERT_EQ(a[c].trials.size(), b[c].trials.size());
        for (std::size_t t = 0; t < a[c].trials.size(); ++t) {
            EXPECT_EQ(a[c].trials[t].runtimeNs,
                      b[c].trials[t].runtimeNs);
            EXPECT_EQ(a[c].trials[t].majorFaults,
                      b[c].trials[t].majorFaults);
            EXPECT_EQ(a[c].trials[t].kernel.evictions,
                      b[c].trials[t].kernel.evictions);
        }
    }
}

TEST(Sweep, TrialSeedIndependentOfScheduling)
{
    ExperimentConfig cfg;
    cfg.baseSeed = 12345;
    // The derivation is pure config + trial index: no global state,
    // no worker identity.
    EXPECT_EQ(trialSeed(cfg, 0), 12345u);
    EXPECT_EQ(trialSeed(cfg, 2) - trialSeed(cfg, 1),
              trialSeed(cfg, 1) - trialSeed(cfg, 0));
    ExperimentConfig other = cfg;
    other.workload = WorkloadKind::PageRank;
    EXPECT_EQ(trialSeed(cfg, 3), trialSeed(other, 3));
}

TEST(Sweep, ParallelMatchesSerial)
{
    const std::vector<ExperimentConfig> cells = smallCells();
    SweepOptions serial;
    serial.workers = 1;
    SweepOptions parallel;
    parallel.workers = 4;
    const std::vector<ExperimentResult> a = runSweep(cells, serial);
    const std::vector<ExperimentResult> b = runSweep(cells, parallel);
    expectSameResults(a, b);
}

TEST(Sweep, MatchesPerCellRunExperiment)
{
    const std::vector<ExperimentConfig> cells = smallCells();
    std::vector<ExperimentResult> per_cell;
    per_cell.reserve(cells.size());
    for (const ExperimentConfig &cell : cells)
        per_cell.push_back(runExperiment(cell));
    const std::vector<ExperimentResult> pooled = runSweep(cells);
    expectSameResults(per_cell, pooled);
}

TEST(Sweep, ResultCacheHitsAndMisses)
{
    ResultCache cache;
    std::vector<ExperimentConfig> cells = smallCells();
    cells.resize(2);
    cache.prefetch(cells);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.hits(), 0u);

    // Declared cells now come from the cache...
    const ExperimentResult &first = cache.get(cells[0]);
    cache.get(cells[1]);
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(&cache.get(cells[0]), &first); // same stored object

    // ...a re-prefetch of known cells runs nothing new...
    cache.prefetch(cells);
    EXPECT_EQ(cache.misses(), 2u);

    // ...and an undeclared cell still works as a one-off miss.
    ExperimentConfig cold = cells[0];
    cold.workload = WorkloadKind::PageRank;
    cache.get(cold);
    EXPECT_EQ(cache.misses(), 3u);

    // Cached results match a fresh computation.
    expectSameResults({cache.get(cells[0])}, {runExperiment(cells[0])});
}

TEST(Sweep, ResultCacheKeyCoversResultChangingConfig)
{
    // Regression: every config field that can change a TrialResult
    // must be part of the cache key, or two different cells alias to
    // one stale entry. The memcg watermark ratios and the metrics
    // mode are the recent additions; capacity is the historical
    // near-miss (two ratios that round to the same percent label).
    ResultCache cache;
    ExperimentConfig base;
    base.scale = ScalePreset::Small;
    base.trials = 1;
    base.workload = WorkloadKind::Tpch;
    cache.get(base);
    EXPECT_EQ(cache.misses(), 1u);
    cache.get(base);
    EXPECT_EQ(cache.hits(), 1u) << "identical config hits";

    ExperimentConfig capped = base;
    capped.memcgMaxRatio = 0.6;
    cache.get(capped);
    EXPECT_EQ(cache.misses(), 2u) << "memory.max changes reclaim";

    ExperimentConfig high = base;
    high.memcgHighRatio = 0.7;
    cache.get(high);
    EXPECT_EQ(cache.misses(), 3u) << "memory.high throttles allocs";

    ExperimentConfig low = base;
    low.memcgLowRatio = 0.2;
    cache.get(low);
    EXPECT_EQ(cache.misses(), 4u) << "memory.low shapes fan-out";

    ExperimentConfig sampled = base;
    sampled.metrics.mode = MetricsMode::Counters;
    cache.get(sampled);
    EXPECT_EQ(cache.misses(), 5u)
        << "metrics mode changes what a result carries";

    ExperimentConfig close = base;
    close.capacityRatio = base.capacityRatio + 0.001;
    cache.get(close);
    EXPECT_EQ(cache.misses(), 6u)
        << "full-precision capacity, not the rounded label";

    ExperimentConfig warmed = base;
    warmed.warmupRefs = 1000;
    cache.get(warmed);
    EXPECT_EQ(cache.misses(), 7u)
        << "functional warmup changes simulated timing";

    ExperimentConfig boundary = base;
    boundary.checkpointAt = 1000;
    cache.get(boundary);
    EXPECT_EQ(cache.misses(), 8u)
        << "checkpointed cells must not alias cold cells";
}

TEST(Sweep, ResultCacheKeyCoversAuditCadence)
{
    // Regression: an audit-heavy run has the same counters as an
    // unaudited one only by luck. The cadence is read from the
    // environment and cached per process, so a cached result must not
    // survive a PAGESIM_AUDIT_EVERY change within one process either.
    ResultCache cache;
    ExperimentConfig base;
    base.scale = ScalePreset::Small;
    base.trials = 1;
    base.workload = WorkloadKind::Tpch;
    cache.get(base);
    EXPECT_EQ(cache.misses(), 1u);

    setenv("PAGESIM_AUDIT_EVERY", "32", 1);
    detail::refreshAuditEveryOverrideCacheForTests();
    cache.get(base);
    EXPECT_EQ(cache.misses(), 2u)
        << "audit cadence joined the key; same config must re-run";
    cache.get(base);
    EXPECT_EQ(cache.hits(), 1u) << "stable cadence hits again";

    unsetenv("PAGESIM_AUDIT_EVERY");
    detail::refreshAuditEveryOverrideCacheForTests();
    cache.get(base);
    EXPECT_EQ(cache.hits(), 2u) << "back to the unaudited entry";
}

TEST(Sweep, WorkersOverrideParsing)
{
    // The PAGESIM_WORKERS plumbing shared by runSweep, the sharded
    // aging scan, and the auditor. workerOverride() caches its getenv
    // read, so the parser is exercised directly.
    EXPECT_EQ(parseWorkersOverride(nullptr), 0u);
    EXPECT_EQ(parseWorkersOverride(""), 0u);
    EXPECT_EQ(parseWorkersOverride("4"), 4u);
    EXPECT_EQ(parseWorkersOverride("1"), 1u);
    EXPECT_EQ(parseWorkersOverride("1024"), 1024u);
    // Garbage, non-positive, and absurd values all mean "no override"
    // rather than a crash or a zero-thread pool.
    EXPECT_EQ(parseWorkersOverride("0"), 0u);
    EXPECT_EQ(parseWorkersOverride("-3"), 0u);
    EXPECT_EQ(parseWorkersOverride("lots"), 0u);
    EXPECT_EQ(parseWorkersOverride("4x"), 0u);
    EXPECT_EQ(parseWorkersOverride("1025"), 0u);
}

TEST(Sweep, ExplicitWorkersBeatsOverride)
{
    // options.workers != 0 must win over the environment: figure
    // benches pin workers explicitly and may run under a CI job that
    // exports PAGESIM_WORKERS for the scan/audit paths.
    const std::vector<ExperimentConfig> cells = smallCells();
    SweepOptions pinned;
    pinned.workers = 2;
    const std::vector<ExperimentResult> a = runSweep(cells, pinned);
    SweepOptions serial;
    serial.workers = 1;
    expectSameResults(a, runSweep(cells, serial));
}

TEST(Sweep, HonorsTrialsOverrideConsistently)
{
    // The cached PAGESIM_TRIALS read (tested in experiment_test)
    // applies to sweeps too: every cell gets the same trial count.
    const std::vector<ExperimentConfig> cells = smallCells();
    const std::vector<ExperimentResult> results = runSweep(cells);
    for (const ExperimentResult &res : results)
        EXPECT_EQ(res.trials.size(), effectiveTrials(cells.front()));
}

} // namespace
} // namespace pagesim
