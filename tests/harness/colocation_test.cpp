/**
 * @file
 * Colocation scenario tests: per-tenant results exist and are
 * deterministic — bit-identical across MG-LRU scan worker counts and
 * across repeated runs — with the full cross-layer auditor (memcg
 * invariant family included) sampling reclaim batches throughout.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/colocation.hh"

namespace pagesim
{
namespace
{

/** Three small tenants exercising mixed workloads and watermarks. */
ColocationConfig
threeTenants()
{
    ColocationConfig config;
    TenantSpec ycsb;
    ycsb.name = "ycsb";
    ycsb.workload = WorkloadKind::YcsbA;
    ycsb.lowRatio = 0.5;
    TenantSpec tpch;
    tpch.name = "tpch";
    tpch.workload = WorkloadKind::Tpch;
    tpch.maxRatio = 0.6;
    TenantSpec ranker;
    ranker.name = "ranker";
    ranker.workload = WorkloadKind::PageRank;
    ranker.highRatio = 0.7;
    config.tenants = {ycsb, tpch, ranker};
    config.capacityRatio = 0.5;
    return config;
}

std::vector<std::uint64_t>
fingerprints(const ColocationTrialResult &trial)
{
    std::vector<std::uint64_t> fps;
    for (const TenantResult &t : trial.tenants)
        fps.push_back(tenantFingerprint(t));
    return fps;
}

TEST(Colocation, TrialReportsEveryTenant)
{
    // The audit cadence is cached per process; refresh around the
    // environment mutation so the override takes effect (and is gone
    // again) regardless of which tests ran before this one.
    setenv("PAGESIM_AUDIT_EVERY", "32", 1);
    detail::refreshAuditEveryOverrideCacheForTests();
    const ColocationConfig config = threeTenants();
    const ColocationTrialResult trial = runColocationTrial(config, 7);
    unsetenv("PAGESIM_AUDIT_EVERY");
    detail::refreshAuditEveryOverrideCacheForTests();

    ASSERT_EQ(trial.tenants.size(), 3u);
    EXPECT_EQ(trial.tenants[0].name, "ycsb");
    EXPECT_EQ(trial.tenants[1].name, "tpch");
    EXPECT_EQ(trial.tenants[2].name, "ranker");
    for (const TenantResult &t : trial.tenants) {
        EXPECT_GT(t.finishNs, 0u) << t.name;
        EXPECT_GT(t.memcgStats.minorFaults, 0u) << t.name;
        EXPECT_GT(t.memcgStats.peakUsage, 0u) << t.name;
        EXPECT_FALSE(t.threadFinishNs.empty()) << t.name;
    }
    // Half-capacity machine: someone must have been reclaimed from.
    std::uint64_t evictions = 0;
    for (const TenantResult &t : trial.tenants)
        evictions += t.memcgStats.evictions;
    EXPECT_GT(evictions, 0u);
    EXPECT_GT(trial.runtimeNs, 0u);
    // YCSB tenant reports request latency; PageRank does not.
    EXPECT_GT(trial.tenants[0].meanRequestNs, 0.0);
    EXPECT_EQ(trial.tenants[2].meanRequestNs, 0.0);
}

TEST(Colocation, DeterministicAcrossScanWorkerCounts)
{
    // The per-tenant analogue of the Big1M serial-vs-sharded pin:
    // MG-LRU's sharded page-table scan must not leak host parallelism
    // into any tenant's results. (PAGESIM_WORKERS is cached per
    // process, so the differential drives MgLruConfig::scanWorkers
    // directly.) Two seeds guard against a lucky collision.
    setenv("PAGESIM_AUDIT_EVERY", "64", 1);
    detail::refreshAuditEveryOverrideCacheForTests();
    for (const std::uint64_t seed : {7ull, 1234ull}) {
        std::vector<std::vector<std::uint64_t>> per_worker;
        for (const unsigned workers : {1u, 2u, 4u}) {
            ColocationConfig config = threeTenants();
            config.mgTweak = [workers](MgLruConfig &c) {
                c.scanWorkers = workers;
            };
            per_worker.push_back(
                fingerprints(runColocationTrial(config, seed)));
        }
        EXPECT_EQ(per_worker[0], per_worker[1]) << "seed " << seed;
        EXPECT_EQ(per_worker[0], per_worker[2]) << "seed " << seed;
    }
    unsetenv("PAGESIM_AUDIT_EVERY");
    detail::refreshAuditEveryOverrideCacheForTests();
}

TEST(Colocation, RepeatRunsAreBitIdentical)
{
    const ColocationConfig config = threeTenants();
    const auto a = fingerprints(runColocationTrial(config, 42));
    const auto b = fingerprints(runColocationTrial(config, 42));
    EXPECT_EQ(a, b);
    // Distinct tenants measure distinct things.
    EXPECT_NE(a[0], a[1]);
    EXPECT_NE(a[1], a[2]);
    // And the seed actually matters.
    const auto c = fingerprints(runColocationTrial(config, 43));
    EXPECT_NE(a, c);
}

TEST(Colocation, RunColocationPoolMatchesDirectTrials)
{
    // The trial pool (however many host workers it uses) must produce
    // exactly the per-trial results of serial direct calls.
    ColocationConfig config = threeTenants();
    config.trials = 2;
    config.baseSeed = 99;
    const ColocationResult pooled = runColocation(config);
    ASSERT_EQ(pooled.trials.size(), 2u);
    for (std::size_t t = 0; t < pooled.trials.size(); ++t) {
        const std::uint64_t seed =
            config.baseSeed + 1000003ull * t;
        EXPECT_EQ(fingerprints(pooled.trials[t]),
                  fingerprints(runColocationTrial(config, seed)))
            << "trial " << t;
    }
}

TEST(Colocation, LabelNamesTenantsAndMachine)
{
    const ColocationConfig config = threeTenants();
    const std::string label = config.label();
    EXPECT_NE(label.find("ycsb"), std::string::npos);
    EXPECT_NE(label.find("tpch"), std::string::npos);
    EXPECT_NE(label.find("ranker"), std::string::npos);
    EXPECT_NE(label.find("50%"), std::string::npos);
}

} // namespace
} // namespace pagesim
