/**
 * @file
 * End-to-end invariants: full trials across the experiment grid must
 * conserve pages, account faults sanely, and reproduce the coarse
 * physics of the paper's setup (pressure monotonicity, device speed
 * ordering).
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace pagesim
{
namespace
{

TEST(Integration, EveryGridCellRunsClean)
{
    for (WorkloadKind wk :
         {WorkloadKind::Tpch, WorkloadKind::PageRank,
          WorkloadKind::YcsbA}) {
        for (PolicyKind pk : {PolicyKind::Clock, PolicyKind::MgLru,
                              PolicyKind::ScanNone}) {
            for (SwapKind sk : {SwapKind::Ssd, SwapKind::Zram}) {
                ExperimentConfig cfg;
                cfg.workload = wk;
                cfg.policy = pk;
                cfg.swap = sk;
                cfg.scale = ScalePreset::Small;
                const TrialResult t = runTrial(cfg, 5);
                const std::string label = cfg.label();
                EXPECT_GT(t.runtimeNs, 0u) << label;
                // Fault accounting: every major fault is a device
                // read (plus readahead reads on top).
                EXPECT_GE(t.swap.reads + t.kernel.writebackRemaps,
                          t.majorFaults)
                    << label;
                // Writebacks never exceed evictions.
                EXPECT_LE(t.kernel.dirtyWritebacks,
                          t.kernel.evictions)
                    << label;
                EXPECT_EQ(t.kernel.dirtyWritebacks +
                              t.kernel.cleanDrops,
                          t.kernel.evictions)
                    << label;
                // Thread completion times recorded for every thread.
                for (const SimTime ft : t.threadFinishNs)
                    EXPECT_GT(ft, 0u) << label;
            }
        }
    }
}

TEST(Integration, MorePressureMeansMoreFaults)
{
    ExperimentConfig cfg;
    cfg.workload = WorkloadKind::Tpch;
    cfg.policy = PolicyKind::MgLru;
    cfg.scale = ScalePreset::Small;

    cfg.capacityRatio = 0.5;
    const TrialResult heavy = runTrial(cfg, 9);
    cfg.capacityRatio = 0.9;
    const TrialResult light = runTrial(cfg, 9);
    EXPECT_GT(heavy.majorFaults, light.majorFaults);
    EXPECT_GT(heavy.runtimeNs, light.runtimeNs);
}

TEST(Integration, ZramRunsFasterThanSsdUnderPressure)
{
    ExperimentConfig cfg;
    cfg.workload = WorkloadKind::PageRank;
    cfg.policy = PolicyKind::MgLru;
    cfg.scale = ScalePreset::Small;
    cfg.capacityRatio = 0.5;

    cfg.swap = SwapKind::Ssd;
    const TrialResult ssd = runTrial(cfg, 3);
    cfg.swap = SwapKind::Zram;
    const TrialResult zram = runTrial(cfg, 3);
    EXPECT_LT(zram.runtimeNs, ssd.runtimeNs / 2)
        << "20us swap vs 7.5ms swap must show up";
}

TEST(Integration, YcsbLatencyTailsOrdered)
{
    ExperimentConfig cfg;
    cfg.workload = WorkloadKind::YcsbB;
    cfg.policy = PolicyKind::Clock;
    cfg.scale = ScalePreset::Small;
    const TrialResult t = runTrial(cfg, 4);
    ASSERT_GT(t.readLatency.count(), 0u);
    EXPECT_LE(t.readLatency.p50(), t.readLatency.p99());
    EXPECT_LE(t.readLatency.p99(), t.readLatency.p9999());
    // Mix B: ~5% writes.
    const double wfrac =
        static_cast<double>(t.writeLatency.count()) /
        static_cast<double>(t.readLatency.count() +
                            t.writeLatency.count());
    EXPECT_NEAR(wfrac, 0.05, 0.02);
}

TEST(Integration, AgingWalksOnlyUnderMgLru)
{
    // Aging runs in reclaim contexts (no dedicated daemon in the
    // default harness configuration): MG-LRU variants perform
    // page-table walks, Clock never does.
    ExperimentConfig cfg;
    cfg.workload = WorkloadKind::Tpch;
    cfg.scale = ScalePreset::Small;
    cfg.policy = PolicyKind::ScanAll;
    const TrialResult scanall = runTrial(cfg, 6);
    EXPECT_GT(scanall.policy.agingPasses, 0u);
    EXPECT_GT(scanall.policy.regionsVisited, 0u);
    EXPECT_GT(scanall.kernel.directAging, 0u)
        << "faulting tasks pay the walks under the cgroup limit";
    cfg.policy = PolicyKind::Clock;
    const TrialResult clock = runTrial(cfg, 6);
    EXPECT_EQ(clock.policy.regionsVisited, 0u);
    EXPECT_EQ(clock.agingCpuNs, 0u);
}

TEST(Integration, Gen14UsesMoreGenerationsWithoutBlocking)
{
    ExperimentConfig cfg;
    cfg.workload = WorkloadKind::PageRank;
    cfg.scale = ScalePreset::Small;
    cfg.policy = PolicyKind::Gen14;
    const TrialResult t = runTrial(cfg, 8);
    EXPECT_EQ(t.mglru.genCreationBlocked, 0u)
        << "2^14 generations cannot exhaust in a short run";
}

} // namespace
} // namespace pagesim
