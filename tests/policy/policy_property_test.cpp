/**
 * @file
 * Property tests driven across every policy configuration: whatever
 * the policy, randomized workloads must preserve the structural
 * invariants the kernel layer relies on.
 */

#include <gtest/gtest.h>

#include <set>

#include "policy/policy_factory.hh"
#include "policy_test_util.hh"
#include "sim/rng.hh"

namespace pagesim
{
namespace
{

class PolicyProperty : public ::testing::TestWithParam<PolicyKind>
{
  protected:
    PolicyProperty()
        : harness_(512, 4096),
          policy_(makePolicy(GetParam(), harness_.frames,
                             {&harness_.space}, harness_.costs,
                             Rng(2024), [](MgLruConfig &mg) {
                                 mg.agingLowPages = 0;
                                 mg.agingEvictGate = 0;
                             }))
    {
    }

    /** Count resident pages tracked via the frame table. */
    std::uint64_t
    residentFrames() const
    {
        return harness_.frames.usedFrames();
    }

    PolicyHarness harness_;
    std::unique_ptr<ReplacementPolicy> policy_;
};

TEST_P(PolicyProperty, RandomChurnPreservesConservation)
{
    Rng rng(77);
    std::set<Vpn> resident;
    CostSink sink;
    std::vector<Pfn> victims;

    for (int step = 0; step < 4000; ++step) {
        const double dice = rng.nextDouble();
        if (dice < 0.55 || resident.empty()) {
            // Touch (possibly faulting in) a random page.
            const Vpn vpn =
                harness_.base() + rng.uniformInt(0, 1023);
            const auto pte = harness_.space.table().at(vpn);
            if (pte.present()) {
                harness_.space.table().setAccessed(vpn);
            } else if (harness_.frames.freeFrames() > 0) {
                harness_.makeResident(*policy_, vpn);
                resident.insert(vpn);
            }
        } else if (dice < 0.85) {
            // Reclaim a few pages.
            victims.clear();
            policy_->selectVictims(victims, 4, sink);
            for (const Pfn pfn : victims) {
                const auto pi = harness_.frames.info(pfn);
                ASSERT_EQ(pi.listId, 0)
                    << "victims must be off policy lists";
                ASSERT_EQ(resident.count(pi.vpn), 1u)
                    << "victim must be a resident page";
                resident.erase(pi.vpn);
                harness_.completeEviction(*policy_, pfn);
            }
        } else if (dice < 0.95) {
            policy_->age(sink);
        } else if (policy_->wantsAging()) {
            policy_->age(sink);
        }
        // Conservation: tracked == frame table's notion.
        ASSERT_EQ(resident.size(), residentFrames());
        ASSERT_EQ(resident.size(),
                  harness_.space.table().totalPresent());
    }
    EXPECT_GT(policy_->stats().evicted, 0u);
}

TEST_P(PolicyProperty, VictimsAreUniqueAndValid)
{
    for (Vpn v = 0; v < 64; ++v)
        harness_.makeResident(*policy_, harness_.base() + v);
    for (Vpn v = 0; v < 64; ++v)
        harness_.space.table().clearAccessed(harness_.base() + v);
    CostSink sink;
    policy_->age(sink);
    policy_->age(sink);

    std::vector<Pfn> victims;
    policy_->selectVictims(victims, 32, sink);
    std::set<Pfn> unique(victims.begin(), victims.end());
    EXPECT_EQ(unique.size(), victims.size());
    for (const Pfn pfn : victims)
        EXPECT_FALSE(harness_.frames.info(pfn).free());
}

TEST_P(PolicyProperty, ProgressUnderFullRetouch)
{
    // Even when the application re-touches everything between rounds,
    // reclaim must eventually produce victims (escalation).
    for (Vpn v = 0; v < 64; ++v)
        harness_.makeResident(*policy_, harness_.base() + v);
    CostSink sink;
    std::vector<Pfn> victims;
    for (int round = 0; round < 12 && victims.empty(); ++round) {
        for (Vpn v = 0; v < 64; ++v)
            harness_.touch(harness_.base() + v);
        if (policy_->wantsAging())
            policy_->age(sink);
        policy_->selectVictims(victims, 8, sink);
    }
    EXPECT_FALSE(victims.empty());
}

TEST_P(PolicyProperty, ShadowsAreNonZeroAndRefaultsCounted)
{
    const Pfn pfn = harness_.makeResident(*policy_, harness_.base());
    const std::uint32_t shadow = policy_->onPageRemoved(pfn);
    EXPECT_NE(shadow, 0u);
    harness_.frames.release(pfn);
    const Pfn again =
        harness_.frames.allocate(&harness_.space, harness_.base(),
                                 false);
    policy_->onPageResident(again, ResidencyKind::SwapInDemand,
                            shadow);
    EXPECT_EQ(policy_->stats().refaults, 1u);
}

TEST_P(PolicyProperty, ScanCostsAreCharged)
{
    for (Vpn v = 0; v < 32; ++v)
        harness_.makeResident(*policy_, harness_.base() + v);
    CostSink sink;
    std::vector<Pfn> victims;
    policy_->age(sink);
    policy_->selectVictims(victims, 8, sink);
    EXPECT_GT(sink.total(), 0u)
        << "scanning must never be free: the paper's central tension";
}

TEST_P(PolicyProperty, DeterministicAcrossIdenticalRuns)
{
    auto drive = [this](ReplacementPolicy &policy,
                        PolicyHarness &harness) {
        Rng rng(5);
        CostSink sink;
        std::vector<Pfn> victims;
        std::uint64_t signature = 0;
        for (int step = 0; step < 800; ++step) {
            const Vpn vpn = harness.base() + rng.uniformInt(0, 255);
            const auto pte = harness.space.table().at(vpn);
            if (pte.present()) {
                harness.space.table().setAccessed(vpn);
            } else if (harness.frames.freeFrames() > 0) {
                harness.makeResident(policy, vpn);
            } else {
                victims.clear();
                policy.selectVictims(victims, 2, sink);
                if (victims.empty() && policy.wantsAging())
                    policy.age(sink);
                for (const Pfn pfn : victims) {
                    signature =
                        splitmix64(signature ^ harness.frames
                                                   .info(pfn)
                                                   .vpn);
                    harness.completeEviction(policy, pfn);
                }
            }
        }
        return signature ^ policy.stats().evicted ^
               (policy.stats().ptesScanned << 20);
    };

    PolicyHarness h2(512, 4096);
    auto p2 = makePolicy(GetParam(), h2.frames, {&h2.space}, h2.costs,
                         Rng(2024), [](MgLruConfig &mg) {
                             mg.agingLowPages = 0;
                             mg.agingEvictGate = 0;
                         });
    EXPECT_EQ(drive(*policy_, harness_), drive(*p2, h2));
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyProperty,
    ::testing::Values(PolicyKind::Clock, PolicyKind::MgLru,
                      PolicyKind::Gen14, PolicyKind::ScanAll,
                      PolicyKind::ScanNone, PolicyKind::ScanRand),
    [](const ::testing::TestParamInfo<PolicyKind> &info) {
        std::string name = policyKindName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace pagesim
