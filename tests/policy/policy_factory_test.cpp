#include <gtest/gtest.h>

#include "policy/policy_factory.hh"
#include "policy_test_util.hh"

namespace pagesim
{
namespace
{

TEST(PolicyFactory, NamesRoundTrip)
{
    for (PolicyKind kind : allPolicyKinds()) {
        EXPECT_EQ(policyKindFromName(policyKindName(kind)), kind);
    }
    EXPECT_THROW(policyKindFromName("bogus"), std::invalid_argument);
}

TEST(PolicyFactory, VariantConfigs)
{
    EXPECT_EQ(mgLruConfigFor(PolicyKind::MgLru).maxNrGens, 4u);
    EXPECT_EQ(mgLruConfigFor(PolicyKind::Gen14).maxNrGens, 1u << 14);
    EXPECT_EQ(mgLruConfigFor(PolicyKind::ScanAll).scanMode,
              ScanMode::All);
    EXPECT_EQ(mgLruConfigFor(PolicyKind::ScanNone).scanMode,
              ScanMode::None);
    EXPECT_EQ(mgLruConfigFor(PolicyKind::ScanRand).scanMode,
              ScanMode::Random);
    EXPECT_DOUBLE_EQ(
        mgLruConfigFor(PolicyKind::ScanRand).randomScanProb, 0.5);
    EXPECT_THROW(mgLruConfigFor(PolicyKind::Clock),
                 std::invalid_argument);
}

TEST(PolicyFactory, BuildsEveryKind)
{
    PolicyHarness h;
    for (PolicyKind kind : allPolicyKinds()) {
        auto policy = makePolicy(kind, h.frames, {&h.space}, h.costs,
                                 Rng(1));
        ASSERT_NE(policy, nullptr);
        EXPECT_EQ(policy->name(), policyKindName(kind));
    }
}

TEST(PolicyFactory, TweakHookApplies)
{
    PolicyHarness h;
    auto policy = makePolicy(
        PolicyKind::MgLru, h.frames, {&h.space}, h.costs, Rng(1),
        [](MgLruConfig &cfg) { cfg.maxNrGens = 7; });
    auto *mg = dynamic_cast<MgLruPolicy *>(policy.get());
    ASSERT_NE(mg, nullptr);
    // Age repeatedly: numGens can never exceed the tweaked budget.
    CostSink sink;
    for (int i = 0; i < 20; ++i)
        mg->age(sink);
    EXPECT_LE(mg->numGens(), 7u);
}

TEST(PolicyFactory, VariantListOrder)
{
    const auto &variants = mgLruVariantKinds();
    ASSERT_EQ(variants.size(), 4u);
    EXPECT_EQ(variants[0], PolicyKind::Gen14);
    EXPECT_EQ(variants[3], PolicyKind::ScanRand);
}

} // namespace
} // namespace pagesim
