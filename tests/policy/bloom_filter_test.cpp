#include <gtest/gtest.h>

#include "policy/mglru/bloom_filter.hh"

namespace pagesim
{
namespace
{

TEST(BloomFilter, NoFalseNegatives)
{
    RegionBloomFilter f(1u << 12, 2, 42);
    for (std::uint64_t r = 0; r < 500; ++r)
        f.add(r * 3);
    for (std::uint64_t r = 0; r < 500; ++r)
        EXPECT_TRUE(f.maybeContains(r * 3));
}

TEST(BloomFilter, LowFalsePositiveRateWhenSized)
{
    RegionBloomFilter f(1u << 15, 2, 1);
    for (std::uint64_t r = 0; r < 1000; ++r)
        f.add(r);
    int fp = 0;
    for (std::uint64_t r = 100000; r < 110000; ++r)
        fp += f.maybeContains(r);
    // 1000 keys, 2 hashes in 32Ki bits: fp rate well under 2%.
    EXPECT_LT(fp, 200);
}

TEST(BloomFilter, ClearEmpties)
{
    RegionBloomFilter f(1u << 10, 2, 7);
    f.add(5);
    EXPECT_FALSE(f.empty());
    f.clear();
    EXPECT_TRUE(f.empty());
    EXPECT_DOUBLE_EQ(f.fillRatio(), 0.0);
    // (With 2 hash probes a cleared filter may never claim membership.)
    EXPECT_FALSE(f.maybeContains(5));
}

TEST(BloomFilter, SaltChangesHashing)
{
    RegionBloomFilter a(1u << 10, 2, 111);
    RegionBloomFilter b(1u << 10, 2, 222);
    for (std::uint64_t r = 0; r < 50; ++r)
        a.add(r);
    // b is empty: nothing added under a different salt; and if we add
    // the same keys, the bit patterns differ.
    for (std::uint64_t r = 0; r < 50; ++r)
        b.add(r);
    bool differs = false;
    for (std::uint64_t probe = 1000; probe < 2000; ++probe)
        differs |= a.maybeContains(probe) != b.maybeContains(probe);
    EXPECT_TRUE(differs);
}

TEST(BloomFilter, FillRatioGrows)
{
    RegionBloomFilter f(1u << 10, 2, 3);
    const double before = f.fillRatio();
    for (std::uint64_t r = 0; r < 100; ++r)
        f.add(r);
    EXPECT_GT(f.fillRatio(), before);
    EXPECT_EQ(f.insertions(), 100u);
}

TEST(BloomFilter, SaturatedFilterSaysYes)
{
    RegionBloomFilter f(64, 2, 9);
    for (std::uint64_t r = 0; r < 1000; ++r)
        f.add(r);
    // Nearly every probe is a (false) positive once saturated —
    // degraded behavior is "scan everything", never "scan nothing".
    int yes = 0;
    for (std::uint64_t probe = 5000; probe < 5100; ++probe)
        yes += f.maybeContains(probe);
    EXPECT_GT(yes, 90);
}

} // namespace
} // namespace pagesim
