/**
 * @file
 * Differential tests for the word-at-a-time aging scan. The bitmap
 * path in MgLruPolicy::scanRegion is a pure optimization: with
 * MgLruConfig::referenceScan selecting the per-slot reference loop,
 * any driving sequence must produce bit-identical charged costs,
 * stats, generation structure, and PTE end-states. A full-trial check
 * extends the contract end to end through the kernel layer (where the
 * resident-hit fast path also sits on the access path).
 */

#include <gtest/gtest.h>

#include <vector>

#include "harness/experiment.hh"
#include "policy/mglru/mglru_policy.hh"
#include "policy_test_util.hh"
#include "sim/rng.hh"

namespace pagesim
{
namespace
{

/** Everything observable after a driving run, for exact comparison. */
struct RunSignature
{
    SimDuration charged = 0;
    PolicyStats stats;
    MgLruStats mg;
    std::uint64_t minSeq = 0;
    std::uint64_t maxSeq = 0;
    std::uint64_t pteHash = 0;
    std::uint64_t pageHash = 0;
};

/**
 * Drive one MgLruPolicy instance through a randomized mix of touches,
 * faults, evictions, sliced aging steps, and full aging passes. The
 * sequence depends only on @p seed and @p mode, never on @p reference.
 */
RunSignature
drive(std::uint64_t seed, ScanMode mode, bool reference)
{
    PolicyHarness h(128, 1024);
    MgLruConfig cfg;
    cfg.scanMode = mode;
    cfg.agingLowPages = 0;
    cfg.agingEvictGate = 0;
    cfg.referenceScan = reference;
    MgLruPolicy policy(h.frames, {&h.space}, h.costs, Rng(seed), cfg);

    Rng rng(seed * 9176 + 13);
    CostSink sink;
    std::vector<Pfn> victims;
    for (int step = 0; step < 3000; ++step) {
        const double dice = rng.nextDouble();
        if (dice < 0.50) {
            const Vpn vpn = h.base() + rng.uniformInt(0, 1023);
            const auto pte = h.space.table().at(vpn);
            if (pte.present())
                h.space.table().setAccessed(vpn);
            else if (h.frames.freeFrames() > 0)
                h.makeResident(policy, vpn);
        } else if (dice < 0.75) {
            victims.clear();
            policy.selectVictims(victims, 4, sink);
            for (const Pfn pfn : victims)
                h.completeEviction(policy, pfn);
        } else if (dice < 0.90) {
            // Sliced walk: exercises the batched empty-region skip.
            policy.ageStep(sink, 8);
        } else {
            policy.age(sink);
        }
    }

    RunSignature sig;
    sig.charged = sink.total();
    sig.stats = policy.stats();
    sig.mg = policy.mgStats();
    sig.minSeq = policy.minSeq();
    sig.maxSeq = policy.maxSeq();
    for (Vpn vpn = h.base(); vpn < h.base() + 1024; ++vpn) {
        const auto pte = h.space.table().at(vpn);
        const std::uint64_t flags =
            (pte.present() ? 1u : 0u) | (pte.accessed() ? 2u : 0u) |
            (pte.dirty() ? 4u : 0u) | (pte.swapped() ? 8u : 0u) |
            (pte.slow() ? 16u : 0u);
        const std::uint64_t value =
            pte.present() ? pte.pfn()
                          : (pte.swapped() ? pte.swapSlot() : 0u);
        sig.pteHash = splitmix64(sig.pteHash ^ (vpn * 31 + flags) ^
                                 (value << 32) ^ pte.shadow());
    }
    for (Pfn pfn = 0; pfn < h.frames.totalFrames(); ++pfn) {
        const auto pi = h.frames.info(pfn);
        if (pi.free())
            continue;
        sig.pageHash =
            splitmix64(sig.pageHash ^ (pi.vpn << 20) ^ (pi.gen << 8) ^
                       (static_cast<std::uint64_t>(pi.refs) << 4) ^
                       pi.tier);
    }
    return sig;
}

void
expectIdentical(const RunSignature &a, const RunSignature &b)
{
    EXPECT_EQ(a.charged, b.charged);
    EXPECT_EQ(a.stats.ptesScanned, b.stats.ptesScanned);
    EXPECT_EQ(a.stats.regionsVisited, b.stats.regionsVisited);
    EXPECT_EQ(a.stats.regionsSkipped, b.stats.regionsSkipped);
    EXPECT_EQ(a.stats.rmapWalks, b.stats.rmapWalks);
    EXPECT_EQ(a.stats.promotions, b.stats.promotions);
    EXPECT_EQ(a.stats.demotions, b.stats.demotions);
    EXPECT_EQ(a.stats.agingPasses, b.stats.agingPasses);
    EXPECT_EQ(a.stats.evicted, b.stats.evicted);
    EXPECT_EQ(a.stats.refaults, b.stats.refaults);
    EXPECT_EQ(a.stats.secondChances, b.stats.secondChances);
    EXPECT_EQ(a.mg.genCreations, b.mg.genCreations);
    EXPECT_EQ(a.mg.genCreationBlocked, b.mg.genCreationBlocked);
    EXPECT_EQ(a.mg.bloomInsertions, b.mg.bloomInsertions);
    EXPECT_EQ(a.mg.neighborScans, b.mg.neighborScans);
    EXPECT_EQ(a.mg.neighborPromotions, b.mg.neighborPromotions);
    EXPECT_EQ(a.mg.lateGenCreations, b.mg.lateGenCreations);
    EXPECT_EQ(a.minSeq, b.minSeq);
    EXPECT_EQ(a.maxSeq, b.maxSeq);
    EXPECT_EQ(a.pteHash, b.pteHash);
    EXPECT_EQ(a.pageHash, b.pageHash);
}

TEST(ScanDifferential, WordScanMatchesReferenceAcrossModes)
{
    for (const ScanMode mode :
         {ScanMode::Bloom, ScanMode::All, ScanMode::Random}) {
        for (std::uint64_t seed = 1; seed <= 4; ++seed) {
            SCOPED_TRACE("mode=" + std::to_string(static_cast<int>(
                             mode)) +
                         " seed=" + std::to_string(seed));
            expectIdentical(drive(seed, mode, /*reference=*/false),
                            drive(seed, mode, /*reference=*/true));
        }
    }
}

/** Access patterns for the sharded-scan differential. */
enum class TouchPattern
{
    Uniform, ///< whole-space uniform random
    Hotspot, ///< 90% of touches in a window straddling a shard seam
    Strided, ///< region-stride walk (one page per region)
};

Vpn
patternVpn(TouchPattern pattern, Rng &rng, int step, Vpn base,
           std::uint64_t pages)
{
    switch (pattern) {
      case TouchPattern::Hotspot:
        if (rng.nextDouble() < 0.9) {
            // Hot window crossing the shard-0/shard-1 seam: the same
            // locality lands in two different harvest chunks.
            const Vpn hot_base = base + kVpnsPerShard - 2048;
            return hot_base + rng.uniformInt(0, 4095);
        }
        return base + rng.uniformInt(0, pages - 1);
      case TouchPattern::Strided:
        return base + (static_cast<std::uint64_t>(step) *
                       kPtesPerRegion) % pages;
      case TouchPattern::Uniform:
      default:
        return base + rng.uniformInt(0, pages - 1);
    }
}

/**
 * Drive a multi-shard machine and snapshot everything observable.
 * The sharded scan must be a pure scheduling change: for any seed,
 * pattern, and worker count, its end state equals the legacy serial
 * walk's bit for bit.
 */
RunSignature
driveSharded(std::uint64_t seed, TouchPattern pattern, bool sharded,
             unsigned workers)
{
    // Span several shards so slices split into multiple chunks and
    // the ordered merge is actually exercised (one shard = 64Ki
    // pages); 4096 frames keep eviction pressure on.
    const std::uint64_t pages = 2 * kVpnsPerShard + 3 * 1024;
    PolicyHarness h(4096, pages);
    MgLruConfig cfg;
    cfg.agingLowPages = 0;
    cfg.agingEvictGate = 0;
    cfg.shardedScan = sharded;
    cfg.scanWorkers = workers == 0 ? 1 : workers;
    MgLruPolicy policy(h.frames, {&h.space}, h.costs, Rng(seed), cfg);
    EXPECT_GE(h.space.table().numShards(), 3u);

    Rng rng(seed * 7919 + 3);
    CostSink sink;
    std::vector<Pfn> victims;
    for (int step = 0; step < 1500; ++step) {
        const double dice = rng.nextDouble();
        if (dice < 0.55) {
            const Vpn vpn =
                patternVpn(pattern, rng, step, h.base(), pages);
            const auto pte = h.space.table().at(vpn);
            if (pte.present())
                h.space.table().setAccessed(vpn);
            else if (h.frames.freeFrames() > 0)
                h.makeResident(policy, vpn);
        } else if (dice < 0.75) {
            victims.clear();
            policy.selectVictims(victims, 8, sink);
            for (const Pfn pfn : victims)
                h.completeEviction(policy, pfn);
        } else if (dice < 0.92) {
            // Sliced walk: slices below, at, and above the shard size
            // in regions, so chunks both split and span shard seams.
            policy.ageStep(sink, 512 + 512 * (step % 3));
        } else {
            policy.age(sink);
        }
    }

    RunSignature sig;
    sig.charged = sink.total();
    sig.stats = policy.stats();
    sig.mg = policy.mgStats();
    sig.minSeq = policy.minSeq();
    sig.maxSeq = policy.maxSeq();
    for (Vpn vpn = h.base(); vpn < h.base() + pages; ++vpn) {
        const auto pte = h.space.table().at(vpn);
        const std::uint64_t flags =
            (pte.present() ? 1u : 0u) | (pte.accessed() ? 2u : 0u) |
            (pte.dirty() ? 4u : 0u) | (pte.swapped() ? 8u : 0u) |
            (pte.slow() ? 16u : 0u);
        const std::uint64_t value =
            pte.present() ? pte.pfn()
                          : (pte.swapped() ? pte.swapSlot() : 0u);
        sig.pteHash = splitmix64(sig.pteHash ^ (vpn * 31 + flags) ^
                                 (value << 32) ^ pte.shadow());
    }
    for (Pfn pfn = 0; pfn < h.frames.totalFrames(); ++pfn) {
        const auto pi = h.frames.info(pfn);
        if (pi.free())
            continue;
        sig.pageHash =
            splitmix64(sig.pageHash ^ (pi.vpn << 20) ^ (pi.gen << 8) ^
                       (static_cast<std::uint64_t>(pi.refs) << 4) ^
                       pi.tier);
    }
    return sig;
}

TEST(ScanDifferential, ShardedScanMatchesSerialAcrossPatterns)
{
    for (const TouchPattern pattern :
         {TouchPattern::Uniform, TouchPattern::Hotspot,
          TouchPattern::Strided}) {
        for (std::uint64_t seed = 1; seed <= 4; ++seed) {
            SCOPED_TRACE("pattern=" +
                         std::to_string(static_cast<int>(pattern)) +
                         " seed=" + std::to_string(seed));
            const RunSignature serial =
                driveSharded(seed, pattern, /*sharded=*/false, 1);
            for (const unsigned workers : {1u, 2u, 4u}) {
                SCOPED_TRACE("workers=" + std::to_string(workers));
                expectIdentical(serial, driveSharded(seed, pattern,
                                                     /*sharded=*/true,
                                                     workers));
            }
        }
    }
}

TEST(ScanDifferential, ShardedScanDoesRealWork)
{
    // Guard against the sharded path silently falling back to the
    // legacy walk (or the harness shrinking to a single shard).
    const RunSignature sig =
        driveSharded(7, TouchPattern::Hotspot, true, 4);
    EXPECT_GT(sig.stats.ptesScanned, 0u);
    EXPECT_GT(sig.stats.regionsVisited, 0u);
    EXPECT_GT(sig.stats.evicted, 0u);
}

TEST(ScanDifferential, ReferenceScanIsActuallyExercised)
{
    // Guard against the switch rotting: both paths must do real work.
    const RunSignature sig = drive(7, ScanMode::All, true);
    EXPECT_GT(sig.stats.ptesScanned, 0u);
    EXPECT_GT(sig.stats.promotions, 0u);
    EXPECT_GT(sig.stats.evicted, 0u);
}

TEST(ScanDifferential, FullTrialIsBitIdentical)
{
    // End to end: a whole TPC-H trial through the kernel layer, the
    // aging daemon, and swap must not change by a single event when
    // the scan implementation is swapped.
    ExperimentConfig cfg;
    cfg.workload = WorkloadKind::Tpch;
    cfg.policy = PolicyKind::MgLru;
    cfg.swap = SwapKind::Ssd;
    cfg.capacityRatio = 0.5;
    cfg.scale = ScalePreset::Small;

    const TrialResult fast = runTrial(cfg, 42);
    cfg.mgTweak = [](MgLruConfig &mg) { mg.referenceScan = true; };
    const TrialResult ref = runTrial(cfg, 42);

    EXPECT_EQ(fast.runtimeNs, ref.runtimeNs);
    EXPECT_EQ(fast.majorFaults, ref.majorFaults);
    EXPECT_EQ(fast.kernel.minorFaults, ref.kernel.minorFaults);
    EXPECT_EQ(fast.kernel.evictions, ref.kernel.evictions);
    EXPECT_EQ(fast.kernel.dirtyWritebacks, ref.kernel.dirtyWritebacks);
    EXPECT_EQ(fast.kernel.cleanDrops, ref.kernel.cleanDrops);
    EXPECT_EQ(fast.kernel.readaheadReads, ref.kernel.readaheadReads);
    EXPECT_EQ(fast.kernel.readaheadHits, ref.kernel.readaheadHits);
    EXPECT_EQ(fast.kernel.allocStalls, ref.kernel.allocStalls);
    EXPECT_EQ(fast.policy.ptesScanned, ref.policy.ptesScanned);
    EXPECT_EQ(fast.policy.regionsVisited, ref.policy.regionsVisited);
    EXPECT_EQ(fast.policy.regionsSkipped, ref.policy.regionsSkipped);
    EXPECT_EQ(fast.policy.promotions, ref.policy.promotions);
    EXPECT_EQ(fast.policy.evicted, ref.policy.evicted);
    EXPECT_EQ(fast.policy.refaults, ref.policy.refaults);
    EXPECT_EQ(fast.mglru.genCreations, ref.mglru.genCreations);
    EXPECT_EQ(fast.mglru.bloomInsertions, ref.mglru.bloomInsertions);
    EXPECT_EQ(fast.mglru.neighborScans, ref.mglru.neighborScans);
    EXPECT_EQ(fast.mglru.neighborPromotions,
              ref.mglru.neighborPromotions);
    EXPECT_EQ(fast.swap.reads, ref.swap.reads);
    EXPECT_EQ(fast.swap.writes, ref.swap.writes);
    EXPECT_EQ(fast.swap.totalReadLatency, ref.swap.totalReadLatency);
    EXPECT_EQ(fast.swap.totalWriteLatency, ref.swap.totalWriteLatency);
    EXPECT_EQ(fast.kswapdCpuNs, ref.kswapdCpuNs);
    EXPECT_EQ(fast.agingCpuNs, ref.agingCpuNs);
    EXPECT_EQ(fast.agingPasses, ref.agingPasses);
    ASSERT_EQ(fast.threadFinishNs.size(), ref.threadFinishNs.size());
    for (std::size_t i = 0; i < fast.threadFinishNs.size(); ++i) {
        EXPECT_EQ(fast.threadFinishNs[i], ref.threadFinishNs[i]);
        EXPECT_EQ(fast.threadBlockedFaults[i],
                  ref.threadBlockedFaults[i]);
    }
}

} // namespace
} // namespace pagesim
