/**
 * @file
 * Comparative behavioral properties of Clock vs. MG-LRU — the
 * qualitative distinctions the paper's analysis relies on, checked as
 * invariants rather than tuned magnitudes.
 */

#include <gtest/gtest.h>

#include "policy/clock_lru.hh"
#include "policy/mglru/mglru_policy.hh"
#include "policy/policy_factory.hh"
#include "policy_test_util.hh"

namespace pagesim
{
namespace
{

std::unique_ptr<ReplacementPolicy>
make(PolicyKind kind, PolicyHarness &h)
{
    return makePolicy(kind, h.frames, {&h.space}, h.costs, Rng(7),
                      [](MgLruConfig &mg) {
                          mg.agingLowPages = 0;
                          mg.agingEvictGate = 0;
                      });
}

/**
 * Drive a hot-set + streaming workload: pages [0, hot) are re-touched
 * every round; pages [hot, hot+stream) are touched once each.
 * Reclaim pressure interleaves. Returns how many HOT pages were
 * evicted (working-set protection failures).
 */
std::uint64_t
hotEvictions(ReplacementPolicy &policy, PolicyHarness &h,
             std::uint64_t hot, std::uint64_t stream)
{
    CostSink sink;
    std::vector<Pfn> victims;
    std::uint64_t hot_evicted = 0;
    // Warm the hot set.
    for (Vpn v = 0; v < hot; ++v)
        h.makeResident(policy, h.base() + v);
    for (std::uint64_t s = 0; s < stream; ++s) {
        // Re-touch the hot set.
        for (Vpn v = 0; v < hot; ++v)
            h.touch(h.base() + v);
        // One streaming page.
        const Vpn sv = h.base() + hot + s;
        if (h.frames.freeFrames() == 0) {
            victims.clear();
            if (policy.wantsAging())
                policy.age(sink);
            policy.selectVictims(victims, 2, sink);
            for (const Pfn pfn : victims) {
                if (h.frames.info(pfn).vpn < h.base() + hot)
                    ++hot_evicted;
                h.completeEviction(policy, pfn);
            }
        }
        if (h.frames.freeFrames() > 0)
            h.makeResident(policy, sv);
        if (s % 16 == 0 && policy.wantsAging())
            policy.age(sink);
    }
    return hot_evicted;
}

TEST(PolicyBehavior, BothPoliciesProtectAReTouchedWorkingSet)
{
    // 64 frames, 24 hot pages, 300 streaming pages: a policy doing
    // its job keeps hot evictions a small fraction of total reclaim.
    for (PolicyKind kind : {PolicyKind::Clock, PolicyKind::MgLru}) {
        PolicyHarness h(64, 1024);
        auto policy = make(kind, h);
        const std::uint64_t hot_ev =
            hotEvictions(*policy, h, 24, 300);
        EXPECT_LT(hot_ev, policy->stats().evicted / 4)
            << policyKindName(kind)
            << ": a continuously re-touched working set must mostly "
               "survive a stream";
        EXPECT_GT(policy->stats().evicted, 200u)
            << policyKindName(kind);
    }
}

TEST(PolicyBehavior, CostStructureMatchesPaper)
{
    // The paper's Sec. III-B / V-B cost asymmetry: for the same
    // workload, Clock resolves every scanned page through the rmap,
    // while MG-LRU amortizes via linear page-table scans — so Clock's
    // rmap-walk count must exceed MG-LRU's, and MG-LRU's PTE-scan
    // count must exceed its own rmap-walk count.
    std::uint64_t clock_rmap = 0, mg_rmap = 0, mg_ptes = 0;
    for (PolicyKind kind : {PolicyKind::Clock, PolicyKind::MgLru}) {
        PolicyHarness h(64, 1024);
        auto policy = make(kind, h);
        hotEvictions(*policy, h, 24, 300);
        if (kind == PolicyKind::Clock) {
            clock_rmap = policy->stats().rmapWalks;
            EXPECT_EQ(policy->stats().ptesScanned,
                      policy->stats().rmapWalks)
                << "Clock has no other scanning instrument";
        } else {
            mg_rmap = policy->stats().rmapWalks;
            mg_ptes = policy->stats().ptesScanned;
        }
    }
    EXPECT_GT(clock_rmap, mg_rmap);
    EXPECT_GT(mg_ptes, mg_rmap);
}

TEST(PolicyBehavior, MgLruGenerationsGiveFinerRecencyThanClock)
{
    // After interleaved touch phases, MG-LRU's generation numbers
    // order pages by touch epoch; Clock can only say active/inactive.
    PolicyHarness h(256, 1024);
    MgLruConfig cfg;
    cfg.maxNrGens = 8;
    cfg.agingLowPages = 0;
    cfg.agingEvictGate = 0;
    auto mg = std::make_unique<MgLruPolicy>(
        h.frames, std::vector<AddressSpace *>{&h.space}, h.costs,
        Rng(3), cfg, "MG-LRU");
    CostSink sink;
    // Epoch 0: pages 0..9; epoch 1: pages 10..19; epoch 2: 20..29.
    std::vector<Pfn> pfns;
    for (Vpn v = 0; v < 30; ++v)
        pfns.push_back(h.makeResident(*mg, h.base() + v));
    for (int epoch = 0; epoch < 3; ++epoch) {
        for (Vpn v = 0; v < 30; ++v)
            h.space.table().clearAccessed(h.base() + v);
        for (Vpn v = epoch * 10u; v < (epoch + 1) * 10u; ++v)
            h.touch(h.base() + v);
        mg->age(sink);
    }
    // Most-recently-touched cohort sits in a strictly younger
    // generation than the older cohorts.
    const std::uint64_t g0 = h.frames.info(pfns[5]).gen;
    const std::uint64_t g1 = h.frames.info(pfns[15]).gen;
    const std::uint64_t g2 = h.frames.info(pfns[25]).gen;
    EXPECT_LT(g0, g1);
    EXPECT_LT(g1, g2);
    EXPECT_GE(mg->numGens(), 3u)
        << "a recency SPECTRUM, not a binary split";
}

} // namespace
} // namespace pagesim
