#include <gtest/gtest.h>

#include <memory>

#include "policy/mglru/mglru_policy.hh"
#include "policy_test_util.hh"

namespace pagesim
{
namespace
{

std::unique_ptr<MgLruPolicy>
makeMgLru(PolicyHarness &h, MgLruConfig config = MgLruConfig{})
{
    // Unit tests drive aging by hand: no pacing gates.
    config.agingLowPages = 0;
    config.agingEvictGate = 0;
    return std::make_unique<MgLruPolicy>(
        h.frames, std::vector<AddressSpace *>{&h.space}, h.costs,
        Rng(99), config, "MG-LRU");
}

TEST(MgLru, StartsWithTwoGenerations)
{
    PolicyHarness h;
    auto mg = makeMgLru(h);
    EXPECT_EQ(mg->numGens(), 2u);
    EXPECT_EQ(mg->minSeq(), 0u);
    EXPECT_EQ(mg->maxSeq(), 1u);
}

TEST(MgLru, NewPagesEnterYoungestGeneration)
{
    PolicyHarness h;
    auto mg = makeMgLru(h);
    const Pfn pfn = h.makeResident(*mg, h.base());
    EXPECT_EQ(h.frames.info(pfn).gen, mg->maxSeq());
    EXPECT_EQ(mg->residentPages(), 1u);
}

TEST(MgLru, ReadaheadEntersOldGeneration)
{
    PolicyHarness h;
    auto mg = makeMgLru(h);
    CostSink sink;
    // Open up a generation spectrum first (fresh policies have only
    // two generations, where oldest+1 == youngest).
    mg->age(sink);
    mg->age(sink);
    const Pfn pfn = h.frames.allocate(&h.space, h.base(), false);
    mg->onPageResident(pfn, ResidencyKind::SwapInReadahead, 0);
    EXPECT_EQ(h.frames.info(pfn).gen, mg->minSeq() + 1)
        << "speculative pages get one generation of grace";
    EXPECT_LT(h.frames.info(pfn).gen, mg->maxSeq());
}

TEST(MgLru, AgingCreatesGenerationAndPromotesAccessed)
{
    PolicyHarness h;
    auto mg = makeMgLru(h);
    const Pfn hot = h.makeResident(*mg, h.base());
    const Pfn cold = h.makeResident(*mg, h.base() + 1);
    h.space.table().clearAccessed(h.base() + 1);
    // `hot` keeps its accessed bit (set by makeResident).

    const std::uint64_t old_max = mg->maxSeq();
    CostSink sink;
    mg->age(sink);
    EXPECT_EQ(mg->maxSeq(), old_max + 1);
    EXPECT_EQ(h.frames.info(hot).gen, old_max + 1)
        << "accessed page promoted to the new youngest";
    EXPECT_EQ(h.frames.info(cold).gen, old_max)
        << "cold page stays in its cohort";
    // The accessed bit was consumed by the walk.
    EXPECT_FALSE(h.space.table().at(h.base()).accessed());
}

TEST(MgLru, GenerationBudgetBlocksCreation)
{
    PolicyHarness h;
    MgLruConfig cfg;
    cfg.maxNrGens = 4;
    auto mg = makeMgLru(h, cfg);
    h.makeResident(*mg, h.base());
    CostSink sink;
    // Age until the budget saturates: maxSeq-minSeq+1 == 4.
    for (int i = 0; i < 10; ++i)
        mg->age(sink);
    EXPECT_EQ(mg->numGens(), 4u);
    EXPECT_GT(mg->mgStats().genCreationBlocked, 0u)
        << "paper Sec. V-B: walks at the budget promote into the "
           "same generation";
}

TEST(MgLru, Gen14NeverBlocks)
{
    PolicyHarness h;
    MgLruConfig cfg;
    cfg.maxNrGens = 1u << 14;
    auto mg = makeMgLru(h, cfg);
    h.makeResident(*mg, h.base());
    CostSink sink;
    for (int i = 0; i < 100; ++i)
        mg->age(sink);
    EXPECT_EQ(mg->mgStats().genCreationBlocked, 0u);
    EXPECT_EQ(mg->mgStats().genCreations, 100u);
}

TEST(MgLru, EvictionTakesOldestUnreferenced)
{
    PolicyHarness h;
    auto mg = makeMgLru(h);
    std::vector<Pfn> pfns;
    for (Vpn v = 0; v < 8; ++v)
        pfns.push_back(h.makeResident(*mg, h.base() + v));
    for (Vpn v = 0; v < 8; ++v)
        h.space.table().clearAccessed(h.base() + v);
    CostSink sink;
    mg->age(sink); // cohort becomes non-youngest
    mg->age(sink);

    std::vector<Pfn> victims;
    const std::size_t got = mg->selectVictims(victims, 4, sink);
    EXPECT_EQ(got, 4u);
    for (const Pfn v : victims)
        EXPECT_EQ(h.frames.info(v).listId, 0);
    EXPECT_EQ(mg->residentPages(), 4u);
}

TEST(MgLru, EvictionSecondChanceWithNeighborScan)
{
    PolicyHarness h;
    auto mg = makeMgLru(h);
    // Two pages in the same page-table region, plus one elsewhere.
    const Vpn a = h.base();
    const Vpn b = h.base() + 1;
    const Pfn pa = h.makeResident(*mg, a);
    const Pfn pb = h.makeResident(*mg, b);
    CostSink sink;
    // Clear bits, age twice so both sit in an old generation.
    h.space.table().clearAccessed(a);
    h.space.table().clearAccessed(b);
    mg->age(sink);
    mg->age(sink);
    // Now both get touched again — eviction will find A referenced.
    h.touch(a);
    h.touch(b);

    std::vector<Pfn> victims;
    mg->selectVictims(victims, 1, sink);
    // Both pages escape: the referenced victim candidate was promoted,
    // and the neighbor scan promoted its region-mate at linear cost.
    EXPECT_EQ(h.frames.info(pa).gen, mg->maxSeq());
    EXPECT_EQ(h.frames.info(pb).gen, mg->maxSeq());
    EXPECT_GT(mg->mgStats().neighborScans, 0u);
    EXPECT_GT(mg->mgStats().neighborPromotions, 0u);
}

TEST(MgLru, NeighborScanDisabledChecksPagesIndividually)
{
    PolicyHarness h;
    MgLruConfig cfg;
    cfg.evictNeighborScan = false;
    auto mg = makeMgLru(h, cfg);
    const Vpn a = h.base();
    const Vpn b = h.base() + 1;
    h.makeResident(*mg, a);
    h.makeResident(*mg, b);
    CostSink sink;
    h.space.table().clearAccessed(a);
    h.space.table().clearAccessed(b);
    mg->age(sink);
    mg->age(sink);
    h.touch(a);
    h.touch(b);
    std::vector<Pfn> victims;
    mg->selectVictims(victims, 1, sink);
    // Both referenced region-mates survive, but each needed its OWN
    // rmap walk (the Clock cost structure) — no spatial batching.
    EXPECT_EQ(mg->mgStats().neighborScans, 0u);
    EXPECT_EQ(mg->mgStats().neighborPromotions, 0u);
    EXPECT_GE(mg->stats().rmapWalks, 2u);
    EXPECT_EQ(mg->stats().secondChances, 2u);
}

TEST(MgLru, ScanNoneSkipsPageTables)
{
    PolicyHarness h;
    MgLruConfig cfg;
    cfg.scanMode = ScanMode::None;
    auto mg = makeMgLru(h, cfg);
    for (Vpn v = 0; v < 16; ++v)
        h.makeResident(*mg, h.base() + v);
    CostSink sink;
    const std::uint64_t old_max = mg->maxSeq();
    mg->age(sink);
    EXPECT_EQ(mg->maxSeq(), old_max + 1) << "generation still bumps";
    EXPECT_EQ(mg->stats().ptesScanned, 0u);
    EXPECT_EQ(mg->stats().regionsVisited, 0u);
}

TEST(MgLru, ScanAllVisitsEveryRegion)
{
    PolicyHarness h(256, 1024);
    MgLruConfig cfg;
    cfg.scanMode = ScanMode::All;
    auto mg = makeMgLru(h, cfg);
    h.makeResident(*mg, h.base());
    CostSink sink;
    mg->age(sink);
    const std::uint64_t regions =
        h.space.table().numRegions();
    EXPECT_EQ(mg->stats().regionsVisited, regions);
    // Only regions with present pages get PTE-scanned.
    EXPECT_EQ(mg->stats().ptesScanned, kPtesPerRegion);
}

TEST(MgLru, ScanRandScansAboutHalf)
{
    PolicyHarness h(2048, 16384);
    MgLruConfig cfg;
    cfg.scanMode = ScanMode::Random;
    cfg.randomScanProb = 0.5;
    auto mg = makeMgLru(h, cfg);
    // Populate one page per region so every region is scannable.
    const std::uint64_t regions = h.space.table().numRegions();
    for (std::uint64_t r = 0; r < regions; ++r) {
        const Vpn v = regionBase(r);
        if (h.space.table().at(v).mapped())
            h.makeResident(*mg, v);
    }
    CostSink sink;
    mg->age(sink);
    const double scanned =
        static_cast<double>(mg->stats().ptesScanned) / kPtesPerRegion;
    const double populated = static_cast<double>(mg->residentPages());
    EXPECT_NEAR(scanned / populated, 0.5, 0.15);
}

TEST(MgLru, BloomFilterGatesSecondWalk)
{
    PolicyHarness h(512, 4096);
    auto mg = makeMgLru(h); // ScanMode::Bloom
    // Region 0 is dense-young (many accessed pages); others sparse.
    for (Vpn v = h.base(); v < h.base() + kPtesPerRegion; ++v)
        h.makeResident(*mg, v);
    CostSink sink;
    mg->age(sink); // cold filter: scans everything, learns density
    const std::uint64_t scanned_first = mg->stats().ptesScanned;
    EXPECT_GT(scanned_first, 0u);
    EXPECT_GT(mg->mgStats().bloomInsertions, 0u);

    // Re-touch the dense region; second walk should scan it (it is in
    // the filter) but skip regions that produced nothing.
    for (Vpn v = h.base(); v < h.base() + kPtesPerRegion; ++v)
        h.touch(v);
    mg->age(sink);
    EXPECT_GT(mg->stats().regionsSkipped, 0u);
    EXPECT_GT(mg->stats().ptesScanned, scanned_first)
        << "the hot region is still being scanned";
}

TEST(MgLru, SlicedWalkMatchesFullWalk)
{
    PolicyHarness h(512, 4096);
    auto mg = makeMgLru(h);
    for (Vpn v = h.base(); v < h.base() + 100; ++v)
        h.makeResident(*mg, v);
    CostSink sink;
    const std::uint64_t old_max = mg->maxSeq();
    // Drive the walk in 1-region slices.
    int slices = 0;
    while (!mg->ageStep(sink, 1))
        ++slices;
    EXPECT_GT(slices, 1);
    EXPECT_EQ(mg->maxSeq(), old_max + 1);
    EXPECT_FALSE(mg->agingInProgress());
}

TEST(MgLru, InlineAgeFinishesInFlightWalk)
{
    PolicyHarness h(512, 4096);
    auto mg = makeMgLru(h);
    for (Vpn v = h.base(); v < h.base() + 100; ++v)
        h.makeResident(*mg, v);
    CostSink sink;
    EXPECT_FALSE(mg->ageStep(sink, 1)); // start, 1 region only
    EXPECT_TRUE(mg->agingInProgress());
    mg->age(sink); // direct-reclaim urgency: finish it
    EXPECT_FALSE(mg->agingInProgress());
    EXPECT_EQ(mg->stats().agingPasses, 1u);
}

TEST(MgLru, RefusesToDrainYoungestGeneration)
{
    PolicyHarness h;
    auto mg = makeMgLru(h);
    for (Vpn v = 0; v < 4; ++v)
        h.makeResident(*mg, h.base() + v);
    // All pages are in the youngest generation; min catches up after
    // eviction drains older (empty) gens.
    CostSink sink;
    std::vector<Pfn> victims;
    const std::size_t got = mg->selectVictims(victims, 4, sink);
    EXPECT_EQ(got, 0u) << "must not evict the only populated youngest "
                          "generation; aging is required first";
}

TEST(MgLru, ForceEvictionAfterStarvation)
{
    PolicyHarness h;
    auto mg = makeMgLru(h);
    for (Vpn v = 0; v < 8; ++v)
        h.makeResident(*mg, h.base() + v);
    CostSink sink;
    std::vector<Pfn> victims;
    // Keep everything referenced; alternate aging + eviction attempts.
    for (int round = 0; round < 6 && victims.empty(); ++round) {
        for (Vpn v = 0; v < 8; ++v)
            h.touch(h.base() + v);
        mg->age(sink);
        mg->selectVictims(victims, 2, sink);
    }
    EXPECT_FALSE(victims.empty());
}

TEST(MgLru, RefaultFeedsPidAndStats)
{
    PolicyHarness h;
    auto mg = makeMgLru(h);
    const Pfn pfn = h.makeResident(*mg, h.base());
    const std::uint32_t shadow = mg->onPageRemoved(pfn);
    EXPECT_NE(shadow, 0u);
    h.frames.release(pfn);
    const Pfn again = h.frames.allocate(&h.space, h.base(), false);
    mg->onPageResident(again, ResidencyKind::SwapInDemand, shadow);
    EXPECT_EQ(mg->stats().refaults, 1u);
    EXPECT_EQ(mg->pid().refaults(0), 1u);
}

TEST(MgLru, FdAccessClimbsTiersForFilePages)
{
    PolicyHarness h;
    h.space.map("file", 64, true);
    auto mg = makeMgLru(h);
    const Vpn fv = h.space.vmas()[1].start;
    const Pfn pfn = h.frames.allocate(&h.space, fv, true);
    h.space.table().mapFrame(fv, pfn);
    mg->onPageResident(pfn, ResidencyKind::NewAnon, 0);

    EXPECT_EQ(h.frames.info(pfn).tier, 0);
    for (int i = 0; i < 8; ++i)
        mg->onFdAccess(pfn);
    EXPECT_GT(h.frames.info(pfn).tier, 0)
        << "fd accesses climb tiers instead of jumping generations";
    EXPECT_EQ(h.frames.info(pfn).gen, mg->maxSeq() - 0)
        << "generation unchanged by fd accesses";
}

TEST(MgLru, AnonPagesStayTierZero)
{
    PolicyHarness h;
    auto mg = makeMgLru(h);
    const Pfn pfn = h.makeResident(*mg, h.base());
    for (int i = 0; i < 8; ++i)
        mg->onFdAccess(pfn);
    EXPECT_EQ(h.frames.info(pfn).tier, 0);
}

TEST(MgLru, GenSizeAccounting)
{
    PolicyHarness h;
    auto mg = makeMgLru(h);
    for (Vpn v = 0; v < 6; ++v)
        h.makeResident(*mg, h.base() + v);
    EXPECT_EQ(mg->genSize(mg->maxSeq()), 6u);
    EXPECT_EQ(mg->genSize(mg->minSeq()), 0u);
    EXPECT_EQ(mg->residentPages(), 6u);
}

} // namespace
} // namespace pagesim
