#include <gtest/gtest.h>

#include "policy/mglru/pid_controller.hh"

namespace pagesim
{
namespace
{

TEST(TierPid, StartsUnprotected)
{
    TierPidController pid;
    for (unsigned t = 0; t < TierPidController::kMaxTiers; ++t)
        EXPECT_FALSE(pid.isProtected(t));
}

TEST(TierPid, TierZeroNeverProtected)
{
    TierPidController pid;
    for (int i = 0; i < 100; ++i) {
        pid.recordEviction(0);
        pid.recordRefault(0);
    }
    pid.update();
    EXPECT_FALSE(pid.isProtected(0));
}

TEST(TierPid, ProtectsHighRefaultTier)
{
    TierPidController pid;
    // Tier 0: low refault rate. Tier 2: everything refaults.
    for (int i = 0; i < 100; ++i) {
        pid.recordEviction(0);
        if (i % 10 == 0)
            pid.recordRefault(0);
        pid.recordEviction(2);
        pid.recordRefault(2);
    }
    pid.update();
    EXPECT_TRUE(pid.isProtected(2));
    EXPECT_GT(pid.output(2), 0.0);
}

TEST(TierPid, NoProtectionWhenRatesBalanced)
{
    TierPidController pid;
    for (int i = 0; i < 100; ++i) {
        pid.recordEviction(0);
        pid.recordEviction(1);
        if (i % 2 == 0) {
            pid.recordRefault(0);
            pid.recordRefault(1);
        }
    }
    pid.update();
    EXPECT_FALSE(pid.isProtected(1));
}

TEST(TierPid, RequiresMinimumEvidence)
{
    PidConfig cfg;
    cfg.minEvictions = 8;
    TierPidController pid(cfg);
    // Only 3 evictions in tier 1, all refaulting: not enough evidence.
    for (int i = 0; i < 20; ++i)
        pid.recordEviction(0);
    for (int i = 0; i < 3; ++i) {
        pid.recordEviction(1);
        pid.recordRefault(1);
    }
    pid.update();
    EXPECT_FALSE(pid.isProtected(1));
}

TEST(TierPid, ProtectionDecaysWhenRefaultsStop)
{
    TierPidController pid;
    for (int i = 0; i < 64; ++i) {
        pid.recordEviction(0);
        pid.recordEviction(1);
        pid.recordRefault(1);
    }
    pid.update();
    ASSERT_TRUE(pid.isProtected(1));
    // Refaults stop; decay + fresh balanced evidence drains the
    // controller within a bounded number of epochs.
    bool released = false;
    for (int epoch = 0; epoch < 50 && !released; ++epoch) {
        for (int i = 0; i < 32; ++i) {
            pid.recordEviction(0);
            pid.recordEviction(1);
        }
        pid.update();
        released = !pid.isProtected(1);
    }
    EXPECT_TRUE(released);
}

TEST(TierPid, IntegralIsBounded)
{
    TierPidController pid;
    // Hammer the error for many epochs: anti-windup must bound output.
    for (int epoch = 0; epoch < 1000; ++epoch) {
        for (int i = 0; i < 16; ++i) {
            pid.recordEviction(0);
            pid.recordEviction(3);
            pid.recordRefault(3);
        }
        pid.update();
    }
    EXPECT_LT(pid.output(3), 100.0);
}

TEST(TierPid, RawCountersAccumulate)
{
    TierPidController pid;
    pid.recordEviction(1);
    pid.recordEviction(1);
    pid.recordRefault(1);
    EXPECT_EQ(pid.evictions(1), 2u);
    EXPECT_EQ(pid.refaults(1), 1u);
}

} // namespace
} // namespace pagesim
