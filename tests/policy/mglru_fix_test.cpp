/**
 * @file
 * Regression tests for the MG-LRU fidelity fixes:
 *
 *  - Refault recency (lru_gen_test_recent): a shadow whose eviction
 *    generation has fallen out of the live window must not train the
 *    tier PID controller. Before the fix every shadow hit trained it,
 *    letting ancient evictions distort tier protection.
 *
 *  - Stale canInc snapshot: a sliced aging walk snapshots "can I mint
 *    a generation?" at startWalk(). If eviction drained the oldest
 *    generation mid-walk, the snapshot went stale and the finished
 *    walk collapsed its promotions into maxSeq instead of creating
 *    the generation the new headroom allows.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "policy/mglru/mglru_policy.hh"
#include "policy_test_util.hh"

namespace pagesim
{
namespace
{

std::unique_ptr<MgLruPolicy>
makeMgLru(PolicyHarness &h, MgLruConfig config = MgLruConfig{})
{
    config.agingLowPages = 0;
    config.agingEvictGate = 0;
    return std::make_unique<MgLruPolicy>(
        h.frames, std::vector<AddressSpace *>{&h.space}, h.costs,
        Rng(99), config, "MG-LRU");
}

/**
 * Evict @p vpn and return the shadow the policy stamped into its PTE.
 */
std::uint32_t
evictForShadow(PolicyHarness &h, MgLruPolicy &mg, Vpn vpn, Pfn pfn)
{
    h.space.table().clearAccessed(vpn);
    h.completeEviction(mg, pfn);
    return h.space.table().at(vpn).shadow();
}

/**
 * Slide the generation window forward @p rounds times: each aging
 * pass mints a generation, and the following (empty) victim scan
 * advances minSeq over the drained oldest generations.
 */
void
slideWindow(MgLruPolicy &mg, int rounds)
{
    CostSink sink;
    std::vector<Pfn> victims;
    for (int i = 0; i < rounds; ++i) {
        mg.age(sink);
        victims.clear();
        mg.selectVictims(victims, 4, sink);
    }
}

TEST(MgLruFix, StaleRefaultDoesNotTrainPid)
{
    PolicyHarness h;
    auto mg = makeMgLru(h);
    const Vpn v = h.base();
    const std::uint32_t shadow =
        evictForShadow(h, *mg, v, h.makeResident(*mg, v));
    ASSERT_NE(shadow, 0u);

    // Age the shadow out of the live window (default maxNrGens = 4).
    slideWindow(*mg, 6);

    const std::uint64_t trained = mg->pid().refaults(0);
    h.makeResident(*mg, v, ResidencyKind::SwapInDemand, shadow);
    // Counted as a refault, but too stale to feed the controller.
    EXPECT_EQ(mg->stats().refaults, 1u);
    EXPECT_EQ(mg->mgStats().staleRefaults, 1u);
    EXPECT_EQ(mg->pid().refaults(0), trained)
        << "stale refault trained the PID controller";

    // A refault within the window still trains it.
    const Pfn again = h.space.table().at(v).pfn();
    const std::uint32_t fresh = evictForShadow(h, *mg, v, again);
    h.makeResident(*mg, v, ResidencyKind::SwapInDemand, fresh);
    EXPECT_EQ(mg->stats().refaults, 2u);
    EXPECT_EQ(mg->mgStats().staleRefaults, 1u);
    EXPECT_EQ(mg->pid().refaults(0), trained + 1);
}

TEST(MgLruFix, RecencyCheckIsConfigurable)
{
    PolicyHarness h;
    MgLruConfig cfg;
    cfg.refaultRecencyCheck = false;
    auto mg = makeMgLru(h, cfg);
    const Vpn v = h.base();
    const std::uint32_t shadow =
        evictForShadow(h, *mg, v, h.makeResident(*mg, v));
    slideWindow(*mg, 6);

    // With the check disabled, even an ancient shadow trains the PID
    // (the pre-recency-check behavior, kept reachable for A/B runs).
    h.makeResident(*mg, v, ResidencyKind::SwapInDemand, shadow);
    EXPECT_EQ(mg->pid().refaults(0), 1u);
    EXPECT_EQ(mg->mgStats().staleRefaults, 0u);
}

TEST(MgLruFix, MidWalkHeadroomStillMintsGeneration)
{
    PolicyHarness h;
    MgLruConfig cfg;
    cfg.maxNrGens = 2; // exhaust the budget from the start
    cfg.scanMode = ScanMode::All;
    auto mg = makeMgLru(h, cfg);
    for (Vpn v = h.base(); v < h.base() + 8; ++v) {
        h.makeResident(*mg, v);
        h.space.table().clearAccessed(v);
    }
    ASSERT_EQ(mg->numGens(), cfg.maxNrGens);

    CostSink sink;
    // Start a sliced walk: the canInc snapshot sees a full budget.
    ASSERT_FALSE(mg->ageStep(sink, 1));
    ASSERT_TRUE(mg->agingInProgress());
    EXPECT_EQ(mg->mgStats().genCreationBlocked, 1u);

    // Eviction drains the (empty) oldest generation mid-walk, so
    // minSeq advances and budget headroom opens under the walker.
    std::vector<Pfn> victims;
    mg->selectVictims(victims, 4, sink);
    ASSERT_EQ(mg->minSeq(), mg->maxSeq());

    const std::uint64_t max_before = mg->maxSeq();
    while (!mg->ageStep(sink, 4)) {
    }
    EXPECT_EQ(mg->maxSeq(), max_before + 1)
        << "walk finished without minting the generation the "
           "mid-walk headroom allows";
    EXPECT_EQ(mg->mgStats().lateGenCreations, 1u);
    EXPECT_EQ(mg->mgStats().genCreations, 1u);

    // Without mid-walk headroom the snapshot stands: no late mint.
    ASSERT_FALSE(mg->ageStep(sink, 1));
    while (!mg->ageStep(sink, 4)) {
    }
    EXPECT_EQ(mg->maxSeq(), max_before + 1);
    EXPECT_EQ(mg->mgStats().lateGenCreations, 1u);
}

} // namespace
} // namespace pagesim
