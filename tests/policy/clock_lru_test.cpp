#include <gtest/gtest.h>

#include "policy/clock_lru.hh"
#include "policy_test_util.hh"

namespace pagesim
{
namespace
{

TEST(ClockLru, NewPagesStartActive)
{
    PolicyHarness h;
    ClockLru clock(h.frames, h.costs);
    h.makeResident(clock, h.base());
    h.makeResident(clock, h.base() + 1);
    EXPECT_EQ(clock.activeSize(), 2u);
    EXPECT_EQ(clock.inactiveSize(), 0u);
}

TEST(ClockLru, ReadaheadStartsInactive)
{
    PolicyHarness h;
    ClockLru clock(h.frames, h.costs);
    const Pfn pfn = h.frames.allocate(&h.space, h.base(), false);
    clock.onPageResident(pfn, ResidencyKind::SwapInReadahead, 0);
    EXPECT_EQ(clock.inactiveSize(), 1u);
}

TEST(ClockLru, AgingDemotesColdKeepsHot)
{
    PolicyHarness h;
    ClockLru clock(h.frames, h.costs);
    std::vector<Pfn> pfns;
    for (Vpn v = 0; v < 12; ++v)
        pfns.push_back(h.makeResident(clock, h.base() + v));
    // Clear all A bits, then re-touch only the first three pages.
    for (Vpn v = 0; v < 12; ++v)
        h.space.table().clearAccessed(h.base() + v);
    for (Vpn v = 0; v < 3; ++v)
        h.touch(h.base() + v);

    CostSink sink;
    clock.age(sink); // shrink active toward the 1/3 target
    EXPECT_GT(clock.inactiveSize(), 0u);
    // The hot pages must still be active.
    for (Vpn v = 0; v < 3; ++v) {
        const Pfn pfn = h.space.table().at(h.base() + v).pfn();
        EXPECT_EQ(h.frames.info(pfn).listId, 1) << "vpn " << v;
    }
    EXPECT_GT(sink.total(), 0u) << "aging charges rmap cost";
}

TEST(ClockLru, SelectVictimsEvictsColdTail)
{
    PolicyHarness h;
    ClockLru clock(h.frames, h.costs);
    for (Vpn v = 0; v < 16; ++v)
        h.makeResident(clock, h.base() + v);
    for (Vpn v = 0; v < 16; ++v)
        h.space.table().clearAccessed(h.base() + v);

    CostSink sink;
    std::vector<Pfn> victims;
    const std::size_t got = clock.selectVictims(victims, 4, sink);
    EXPECT_EQ(got, 4u);
    // Victims are off the lists.
    for (const Pfn pfn : victims)
        EXPECT_EQ(h.frames.info(pfn).listId, 0);
    // Victims are the oldest (lowest VPNs were inserted first).
    EXPECT_EQ(h.frames.info(victims[0]).vpn, h.base());
}

TEST(ClockLru, SecondChancePromotesAccessed)
{
    PolicyHarness h;
    ClockLru clock(h.frames, h.costs);
    for (Vpn v = 0; v < 8; ++v)
        h.makeResident(clock, h.base() + v);
    for (Vpn v = 0; v < 8; ++v)
        h.space.table().clearAccessed(h.base() + v);
    CostSink sink;
    clock.age(sink); // move everything toward inactive
    // Re-touch the page at the inactive tail (first demoted = vpn 0).
    h.touch(h.base());

    std::vector<Pfn> victims;
    clock.selectVictims(victims, 2, sink);
    for (const Pfn pfn : victims)
        EXPECT_NE(h.frames.info(pfn).vpn, h.base())
            << "accessed page must get its second chance";
    EXPECT_GT(clock.stats().secondChances, 0u);
}

TEST(ClockLru, RmapWalkChargedPerScan)
{
    PolicyHarness h;
    ClockLru clock(h.frames, h.costs);
    for (Vpn v = 0; v < 8; ++v)
        h.makeResident(clock, h.base() + v);
    for (Vpn v = 0; v < 8; ++v)
        h.space.table().clearAccessed(h.base() + v);
    CostSink sink;
    std::vector<Pfn> victims;
    clock.selectVictims(victims, 8, sink);
    // Every scanned page pays one rmap walk: cost >= 8 * rmapWalk.
    EXPECT_GE(sink.total(), 8 * h.costs.rmapWalk);
    EXPECT_EQ(clock.stats().rmapWalks, clock.stats().ptesScanned);
}

TEST(ClockLru, ForceEvictionAfterStarvation)
{
    PolicyHarness h;
    ClockLru clock(h.frames, h.costs);
    for (Vpn v = 0; v < 8; ++v)
        h.makeResident(clock, h.base() + v);
    // Everything stays hot: re-touch after every scan round.
    CostSink sink;
    std::vector<Pfn> victims;
    for (int round = 0; round < 4 && victims.empty(); ++round) {
        for (Vpn v = 0; v < 8; ++v)
            h.touch(h.base() + v);
        clock.selectVictims(victims, 2, sink);
    }
    EXPECT_FALSE(victims.empty())
        << "escalation must eventually reclaim hot pages";
}

TEST(ClockLru, RemovedPagesLeaveLists)
{
    PolicyHarness h;
    ClockLru clock(h.frames, h.costs);
    const Pfn pfn = h.makeResident(clock, h.base());
    EXPECT_EQ(clock.activeSize() + clock.inactiveSize(), 1u);
    h.completeEviction(clock, pfn);
    EXPECT_EQ(clock.activeSize() + clock.inactiveSize(), 0u);
}

TEST(ClockLru, ShadowIsNonZeroAndCountsRefaults)
{
    PolicyHarness h;
    ClockLru clock(h.frames, h.costs);
    const Pfn pfn = h.makeResident(clock, h.base());
    const std::uint32_t shadow = clock.onPageRemoved(pfn);
    EXPECT_NE(shadow, 0u);
    h.frames.release(pfn);
    const Pfn again = h.frames.allocate(&h.space, h.base(), false);
    clock.onPageResident(again, ResidencyKind::SwapInDemand, shadow);
    EXPECT_EQ(clock.stats().refaults, 1u);
}

TEST(ClockLru, WantsAgingWhenInactiveLow)
{
    PolicyHarness h;
    ClockLru clock(h.frames, h.costs);
    for (Vpn v = 0; v < 9; ++v)
        h.makeResident(clock, h.base() + v);
    EXPECT_TRUE(clock.wantsAging()) << "all pages active";
    for (Vpn v = 0; v < 9; ++v)
        h.space.table().clearAccessed(h.base() + v);
    CostSink sink;
    clock.age(sink);
    EXPECT_FALSE(clock.wantsAging());
}

} // namespace
} // namespace pagesim
