/**
 * @file
 * Shared fixture helpers for policy unit tests: a tiny machine with a
 * frame table, one address space, and manual page residency control
 * (standing in for the kernel layer).
 */

#ifndef PAGESIM_TESTS_POLICY_TEST_UTIL_HH
#define PAGESIM_TESTS_POLICY_TEST_UTIL_HH

#include <memory>

#include "mem/address_space.hh"
#include "mem/frame_table.hh"
#include "policy/replacement_policy.hh"

namespace pagesim
{

/** A miniature machine for driving policies by hand. */
struct PolicyHarness
{
    FrameTable frames;
    AddressSpace space;
    MmCosts costs;

    explicit
    PolicyHarness(std::uint32_t nframes = 256,
                  std::uint64_t vma_pages = 1024)
        : frames(nframes), space(0)
    {
        space.map("test", vma_pages);
    }

    Vpn base() const { return space.vmas().front().start; }

    /** Make @p vpn resident and tell @p policy; returns the frame. */
    Pfn
    makeResident(ReplacementPolicy &policy, Vpn vpn,
                 ResidencyKind kind = ResidencyKind::NewAnon,
                 std::uint32_t shadow = 0)
    {
        const auto pte = space.table().at(vpn);
        const Pfn pfn = frames.allocate(&space, vpn, pte.file());
        EXPECT_NE(pfn, kInvalidPfn);
        space.table().mapFrame(vpn, pfn);
        policy.onPageResident(pfn, kind, shadow);
        space.table().setAccessed(vpn);
        return pfn;
    }

    /** Simulate an application touch (hardware sets the A bit). */
    void
    touch(Vpn vpn, bool write = false)
    {
        const auto pte = space.table().at(vpn);
        ASSERT_TRUE(pte.present());
        space.table().setAccessed(vpn);
        if (write)
            pte.setFlag(Pte::Dirty);
    }

    /** Complete an eviction the way the kernel layer would. */
    void
    completeEviction(ReplacementPolicy &policy, Pfn pfn,
                     SwapSlot slot = 1)
    {
        const auto pi = frames.info(pfn);
        const std::uint32_t shadow = policy.onPageRemoved(pfn);
        space.table().unmapToSwap(pi.vpn, slot, shadow);
        pi.backing = kInvalidSlot;
        frames.release(pfn);
    }
};

} // namespace pagesim

#endif // PAGESIM_TESTS_POLICY_TEST_UTIL_HH
