#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

#include "sim/small_function.hh"

namespace pagesim
{
namespace
{

TEST(SmallFunction, DefaultIsEmpty)
{
    SmallFunction<64> fn;
    EXPECT_FALSE(static_cast<bool>(fn));
    EXPECT_FALSE(fn.inlineStored());
}

TEST(SmallFunction, SmallCaptureStaysInline)
{
    int hits = 0;
    SmallFunction<64> fn([&hits] { ++hits; });
    EXPECT_TRUE(fn.inlineStored());
    fn();
    fn();
    EXPECT_EQ(hits, 2);
}

TEST(SmallFunction, CaptureAtTheSizeLimitStaysInline)
{
    std::array<std::uint64_t, 7> payload{};
    payload.fill(3);
    std::uint64_t sum = 0;
    // 56 bytes of payload + the reference: exactly 64 bytes.
    SmallFunction<64> fn([payload, &sum] {
        for (std::uint64_t v : payload)
            sum += v;
    });
    EXPECT_TRUE(fn.inlineStored());
    fn();
    EXPECT_EQ(sum, 21u);
}

TEST(SmallFunction, OversizedCaptureFallsBackToHeap)
{
    std::array<std::uint64_t, 16> payload{};
    payload[15] = 7;
    std::uint64_t out = 0;
    SmallFunction<64> fn([payload, &out] { out = payload[15]; });
    EXPECT_FALSE(fn.inlineStored());
    fn();
    EXPECT_EQ(out, 7u);
}

TEST(SmallFunction, MoveTransfersTarget)
{
    int hits = 0;
    SmallFunction<64> a([&hits] { ++hits; });
    SmallFunction<64> b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a)); // NOLINT: testing moved-from
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(hits, 1);

    SmallFunction<64> c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b)); // NOLINT: testing moved-from
    c();
    EXPECT_EQ(hits, 2);
}

TEST(SmallFunction, AcceptsMoveOnlyCaptures)
{
    // std::function rejects these; the event queue must not.
    auto owned = std::make_unique<int>(41);
    int out = 0;
    SmallFunction<64> fn(
        [p = std::move(owned), &out] { out = *p + 1; });
    EXPECT_TRUE(fn.inlineStored());
    fn();
    EXPECT_EQ(out, 42);
}

TEST(SmallFunction, NonTrivialCapturesDestroyExactlyOnce)
{
    // A shared_ptr capture is the worst case for the move machinery:
    // double-destroy or a skipped destroy shows up in use_count.
    auto tracker = std::make_shared<int>(0);
    {
        SmallFunction<64> a([tracker] { ++*tracker; });
        EXPECT_EQ(tracker.use_count(), 2);
        SmallFunction<64> b(std::move(a));
        EXPECT_EQ(tracker.use_count(), 2);
        SmallFunction<64> c;
        c = std::move(b);
        EXPECT_EQ(tracker.use_count(), 2);
        c();
    }
    EXPECT_EQ(tracker.use_count(), 1);
    EXPECT_EQ(*tracker, 1);
}

TEST(SmallFunction, HeapTargetSurvivesMoves)
{
    auto tracker = std::make_shared<int>(0);
    std::array<std::uint64_t, 32> pad{};
    {
        SmallFunction<64> a([tracker, pad] { ++*tracker; });
        EXPECT_FALSE(a.inlineStored());
        SmallFunction<64> b(std::move(a));
        b();
        SmallFunction<64> c(std::move(b));
        c();
    }
    EXPECT_EQ(tracker.use_count(), 1);
    EXPECT_EQ(*tracker, 2);
}

} // namespace
} // namespace pagesim
