#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <iterator>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"

namespace pagesim
{
namespace
{

TEST(EventQueue, StartsEmptyAtTimeZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_FALSE(q.runOne());
}

TEST(EventQueue, DispatchesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, TiesBreakFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(42, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ClockAdvancesToEventTime)
{
    EventQueue q;
    SimTime seen = 0;
    q.schedule(1000, [&] { seen = q.now(); });
    q.run();
    EXPECT_EQ(seen, 1000u);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    SimTime seen = 0;
    q.schedule(100, [&] {
        q.scheduleAfter(50, [&] { seen = q.now(); });
    });
    q.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, PastScheduleClampsToNow)
{
    EventQueue q;
    SimTime seen = 0;
    q.schedule(100, [&] {
        q.schedule(10, [&] { seen = q.now(); }); // in the past
    });
    q.run();
    EXPECT_EQ(seen, 100u);
    EXPECT_EQ(q.pastSchedules(), 1u);
}

TEST(EventQueue, RunUntilStopsAtDeadline)
{
    EventQueue q;
    int count = 0;
    q.schedule(10, [&] { ++count; });
    q.schedule(20, [&] { ++count; });
    q.schedule(30, [&] { ++count; });
    q.runUntil(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.now(), 20u);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue q;
    q.runUntil(500);
    EXPECT_EQ(q.now(), 500u);
}

TEST(EventQueue, RunWithLimitStopsEarly)
{
    EventQueue q;
    int count = 0;
    for (int i = 0; i < 10; ++i)
        q.schedule(i, [&] { ++count; });
    q.run(4);
    EXPECT_EQ(count, 4);
    EXPECT_EQ(q.pending(), 6u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            q.scheduleAfter(1, chain);
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(q.now(), 4u);
    EXPECT_EQ(q.dispatched(), 5u);
}

TEST(EventQueue, RunWhileHonorsPredicate)
{
    EventQueue q;
    int count = 0;
    for (int i = 0; i < 10; ++i)
        q.schedule(i, [&] { ++count; });
    q.runWhile([&] { return count < 3; });
    EXPECT_EQ(count, 3);
}

// The timing wheel must dispatch in exactly the (when, seq) order the
// original std::priority_queue implementation produced. These tests
// cross-check against a reference model on randomized schedules that
// exercise every internal path: same-bucket ties, cascades from every
// level, the far-future overflow heap, and cursor pull-back.

namespace
{

/** xorshift64: cheap deterministic randomness for the cross-checks. */
struct MiniRng
{
    std::uint64_t x;
    std::uint64_t
    next()
    {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    }
};

/** Reference ordering: stable sort of (when, insertion index). */
std::vector<std::pair<SimTime, int>>
referenceOrder(const std::vector<SimTime> &whens)
{
    std::vector<std::pair<SimTime, int>> order;
    order.reserve(whens.size());
    for (std::size_t i = 0; i < whens.size(); ++i)
        order.emplace_back(whens[i], static_cast<int>(i));
    std::stable_sort(order.begin(), order.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    return order;
}

} // namespace

TEST(EventQueue, RandomizedOrderMatchesReferenceAcrossTimescales)
{
    MiniRng rng{0x2545f4914f6cdd1dull};
    // Deltas spanning ns to minutes hit every wheel level plus the
    // overflow heap; coarse quantization forces plenty of exact ties.
    const SimTime spans[] = {1,         1000,        65536,
                             1000000,   100000000,   30000000000ull,
                             2000000000000ull};
    for (int round = 0; round < 20; ++round) {
        EventQueue q;
        std::vector<SimTime> whens;
        std::vector<int> fired;
        for (int i = 0; i < 400; ++i) {
            const SimTime span = spans[rng.next() % std::size(spans)];
            const SimTime when = (rng.next() % span) & ~0x3ull;
            const int id = static_cast<int>(whens.size());
            whens.push_back(when);
            q.schedule(when, [&fired, id] { fired.push_back(id); });
        }
        q.run();
        const auto expect = referenceOrder(whens);
        ASSERT_EQ(fired.size(), expect.size());
        for (std::size_t i = 0; i < expect.size(); ++i)
            EXPECT_EQ(fired[i], expect[i].second) << "round " << round;
    }
}

TEST(EventQueue, RandomizedSelfSchedulingMatchesReference)
{
    // Interleaved schedule-from-callback churn: the wheel state when
    // an event fires differs from when it was inserted, so cascades
    // and bucket activation run mid-dispatch, like the simulator.
    MiniRng rng{0x9e3779b97f4a7c15ull};
    EventQueue q;
    std::vector<SimTime> whens;
    std::vector<int> fired;
    std::function<void(int)> spawn = [&](int fanout) {
        for (int i = 0; i < fanout; ++i) {
            const SimTime delta = (rng.next() % 3 == 0)
                                      ? rng.next() % 300000000
                                      : rng.next() % 50000;
            const SimTime when = q.now() + (delta & ~0x3ull);
            const int id = static_cast<int>(whens.size());
            whens.push_back(when);
            q.schedule(when, [&, id] {
                fired.push_back(id);
                if (whens.size() < 3000)
                    spawn(static_cast<int>(rng.next() % 3));
            });
        }
    };
    spawn(64);
    q.run();
    const auto expect = referenceOrder(whens);
    ASSERT_EQ(fired.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i)
        ASSERT_EQ(fired[i], expect[i].second) << "position " << i;
}

TEST(EventQueue, InsertBehindParkedCursorKeepsOrder)
{
    // runUntil() can park the wheel cursor on a far-future event's
    // bucket while the clock stays at the deadline; a later insert
    // between the two must still dispatch first (the rehome path).
    EventQueue q;
    std::vector<int> fired;
    q.schedule(5000000000ull, [&] { fired.push_back(2); });
    q.runUntil(1000); // cursor now parked far ahead of the clock
    EXPECT_EQ(q.now(), 1000u);
    q.schedule(2000, [&] { fired.push_back(0); });
    q.schedule(400000000ull, [&] { fired.push_back(1); });
    q.run();
    EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(q.pastSchedules(), 0u);
}

TEST(EventQueue, RunUntilSplitsBucketAndLaterInsertsJoinHeap)
{
    // runUntil() can drain half of an activated bucket; survivors must
    // stay ordered with events inserted into the built heap afterward.
    EventQueue q;
    std::vector<int> fired;
    // Two events in the same level-0 bucket (1 us wide), one early
    // one late; runUntil splits the bucket.
    q.schedule(10000000100ull, [&] { fired.push_back(1); });
    q.schedule(10000000900ull, [&] { fired.push_back(3); });
    q.runUntil(10000000500ull);
    EXPECT_EQ(fired, (std::vector<int>{1}));
    q.schedule(10000000600ull, [&] { fired.push_back(2); });
    q.runUntil(10000000600ull);
    q.schedule(10000000700ull, [&] {
        fired.push_back(4);
        q.scheduleAfter(50, [&] { fired.push_back(5); });
    });
    q.run();
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 4, 5, 3}));
}

TEST(EventQueue, MassedTiesDispatchFifoAcrossBucketActivation)
{
    // FIFO among equal timestamps must survive the append-then-build
    // bucket activation: insert before and after the bucket's heap is
    // built, at the same instant.
    EventQueue q;
    std::vector<int> fired;
    const SimTime t = 777777;
    for (int i = 0; i < 50; ++i)
        q.schedule(t, [&fired, i] { fired.push_back(i); });
    // First dispatch activates the bucket; the callback then inserts
    // more ties, which join the already-built heap.
    q.schedule(t - 1, [&] {
        for (int i = 50; i < 80; ++i)
            q.schedule(t, [&fired, i] { fired.push_back(i); });
    });
    q.run();
    ASSERT_EQ(fired.size(), 80u);
    for (int i = 0; i < 80; ++i)
        EXPECT_EQ(fired[i], i);
}

} // namespace
} // namespace pagesim
