#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace pagesim
{
namespace
{

TEST(EventQueue, StartsEmptyAtTimeZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_FALSE(q.runOne());
}

TEST(EventQueue, DispatchesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, TiesBreakFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(42, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ClockAdvancesToEventTime)
{
    EventQueue q;
    SimTime seen = 0;
    q.schedule(1000, [&] { seen = q.now(); });
    q.run();
    EXPECT_EQ(seen, 1000u);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    SimTime seen = 0;
    q.schedule(100, [&] {
        q.scheduleAfter(50, [&] { seen = q.now(); });
    });
    q.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, PastScheduleClampsToNow)
{
    EventQueue q;
    SimTime seen = 0;
    q.schedule(100, [&] {
        q.schedule(10, [&] { seen = q.now(); }); // in the past
    });
    q.run();
    EXPECT_EQ(seen, 100u);
    EXPECT_EQ(q.pastSchedules(), 1u);
}

TEST(EventQueue, RunUntilStopsAtDeadline)
{
    EventQueue q;
    int count = 0;
    q.schedule(10, [&] { ++count; });
    q.schedule(20, [&] { ++count; });
    q.schedule(30, [&] { ++count; });
    q.runUntil(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.now(), 20u);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue q;
    q.runUntil(500);
    EXPECT_EQ(q.now(), 500u);
}

TEST(EventQueue, RunWithLimitStopsEarly)
{
    EventQueue q;
    int count = 0;
    for (int i = 0; i < 10; ++i)
        q.schedule(i, [&] { ++count; });
    q.run(4);
    EXPECT_EQ(count, 4);
    EXPECT_EQ(q.pending(), 6u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            q.scheduleAfter(1, chain);
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(q.now(), 4u);
    EXPECT_EQ(q.dispatched(), 5u);
}

TEST(EventQueue, RunWhileHonorsPredicate)
{
    EventQueue q;
    int count = 0;
    for (int i = 0; i < 10; ++i)
        q.schedule(i, [&] { ++count; });
    q.runWhile([&] { return count < 3; });
    EXPECT_EQ(count, 3);
}

} // namespace
} // namespace pagesim
