#include <gtest/gtest.h>

#include <vector>

#include "sim/actor.hh"
#include "sim/simulation.hh"

namespace pagesim
{
namespace
{

/** Actor that charges fixed work chunks N times then finishes. */
class ChunkActor : public SimActor
{
  public:
    ChunkActor(Simulation &sim, int chunks, SimDuration work)
        : SimActor(sim, "chunk", true), chunks_(chunks), work_(work)
    {
    }

    std::vector<SimTime> stepTimes;

  protected:
    void
    step() override
    {
        stepTimes.push_back(now());
        if (chunks_-- > 0)
            yieldAfter(work_);
        else
            finish();
    }

  private:
    int chunks_;
    SimDuration work_;
};

TEST(SimActor, RunsToCompletionAndChargesWork)
{
    Simulation sim(4);
    ChunkActor actor(sim, 3, 100);
    actor.start();
    EXPECT_TRUE(sim.runToCompletion());
    EXPECT_TRUE(actor.finished());
    EXPECT_EQ(actor.cpuWork(), 300u);
    EXPECT_EQ(sim.now(), 300u);
    // Steps at 0, 100, 200, 300.
    ASSERT_EQ(actor.stepTimes.size(), 4u);
    EXPECT_EQ(actor.stepTimes[3], 300u);
}

TEST(SimActor, ContentionDilatesWallTime)
{
    Simulation sim(1); // one CPU
    ChunkActor a(sim, 1, 100);
    ChunkActor b(sim, 1, 100);
    a.start();
    b.start();
    EXPECT_TRUE(sim.runToCompletion());
    // Two runnable actors on one CPU: each 100ns chunk takes 200ns of
    // wall time under processor sharing.
    EXPECT_EQ(sim.now(), 200u);
}

class SleeperActor : public SimActor
{
  public:
    SleeperActor(Simulation &sim, SimDuration nap)
        : SimActor(sim, "sleeper", true), nap_(nap)
    {
    }

  protected:
    void
    step() override
    {
        if (!slept_) {
            slept_ = true;
            sleepFor(nap_);
        } else {
            finish();
        }
    }

  private:
    SimDuration nap_;
    bool slept_ = false;
};

TEST(SimActor, SleepForWakesAtDeadline)
{
    Simulation sim(4);
    SleeperActor actor(sim, 5000);
    actor.start();
    EXPECT_TRUE(sim.runToCompletion());
    EXPECT_EQ(sim.now(), 5000u);
    EXPECT_EQ(actor.blockedTime(), 5000u);
}

class BlockingActor : public SimActor
{
  public:
    BlockingActor(Simulation &sim)
        : SimActor(sim, "blocker", true)
    {
    }

    bool wasWoken = false;

  protected:
    void
    step() override
    {
        if (!blocked_) {
            blocked_ = true;
            block();
        } else {
            wasWoken = true;
            finish();
        }
    }

  private:
    bool blocked_ = false;
};

TEST(SimActor, BlockAndExternalWake)
{
    Simulation sim(4);
    BlockingActor actor(sim);
    actor.start();
    sim.events().schedule(700, [&] { actor.wake(); });
    EXPECT_TRUE(sim.runToCompletion());
    EXPECT_TRUE(actor.wasWoken);
    EXPECT_EQ(sim.now(), 700u);
    EXPECT_EQ(actor.blockedTime(), 700u);
}

TEST(SimActor, WakeWhileRunnableIsNoop)
{
    Simulation sim(4);
    ChunkActor actor(sim, 2, 100);
    actor.start();
    sim.events().schedule(50, [&] { actor.wake(); }); // mid-chunk
    EXPECT_TRUE(sim.runToCompletion());
    // The spurious wake must not duplicate dispatches or lose work.
    EXPECT_EQ(actor.cpuWork(), 200u);
    EXPECT_TRUE(actor.finished());
}

TEST(SimActor, EarlyWakeCancelsSleepTimeout)
{
    Simulation sim(4);
    SleeperActor actor(sim, 10000);
    actor.start();
    sim.events().schedule(1000, [&] { actor.wake(); });
    EXPECT_TRUE(sim.runToCompletion());
    // Finishes right after the early wake, not at the sleep deadline.
    EXPECT_EQ(sim.now(), 1000u);
}

TEST(SimActor, ForegroundCountGovernsCompletion)
{
    Simulation sim(2);
    ChunkActor fg(sim, 1, 50);
    fg.start();
    // A daemon that never finishes must not block completion.
    class Daemon : public SimActor
    {
      public:
        explicit Daemon(Simulation &sim) : SimActor(sim, "d", false) {}

      protected:
        void step() override { sleepFor(10); }
    };
    Daemon daemon(sim);
    daemon.start();
    EXPECT_TRUE(sim.runToCompletion(100000));
    EXPECT_TRUE(fg.finished());
    EXPECT_FALSE(daemon.finished());
}

} // namespace
} // namespace pagesim
