#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "sim/rng.hh"

namespace pagesim
{
namespace
{

TEST(Rng, DeterministicForSeed)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.nextU64() == b.nextU64();
    EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsIndependentOfParentState)
{
    Rng a(7);
    Rng child1 = a.fork(1);
    // Forking must not perturb the parent.
    Rng b(7);
    (void)b.fork(1);
    Rng child2 = b.fork(1);
    EXPECT_EQ(child1.nextU64(), child2.nextU64());
}

TEST(Rng, ForkStreamsDecorrelated)
{
    Rng a(7);
    Rng c1 = a.fork(1);
    Rng c2 = a.fork(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += c1.nextU64() == c2.nextU64();
    EXPECT_EQ(same, 0);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i) {
        const double x = r.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng r(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t x = r.uniformInt(3, 10);
        ASSERT_GE(x, 3u);
        ASSERT_LE(x, 10u);
        saw_lo |= x == 3;
        saw_hi |= x == 10;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleValue)
{
    Rng r(5);
    EXPECT_EQ(r.uniformInt(42, 42), 42u);
}

TEST(Rng, UniformIntIsRoughlyUniform)
{
    Rng r(11);
    constexpr int kBuckets = 16;
    constexpr int kDraws = 160000;
    std::vector<int> counts(kBuckets, 0);
    for (int i = 0; i < kDraws; ++i)
        ++counts[r.uniformInt(0, kBuckets - 1)];
    const double expect = static_cast<double>(kDraws) / kBuckets;
    for (int c : counts) {
        EXPECT_NEAR(c, expect, expect * 0.1);
    }
}

TEST(Rng, NormalMomentsMatch)
{
    Rng r(13);
    constexpr int kN = 200000;
    double sum = 0, sumsq = 0;
    for (int i = 0; i < kN; ++i) {
        const double x = r.normal(10.0, 2.0);
        sum += x;
        sumsq += x * x;
    }
    const double mean = sum / kN;
    const double var = sumsq / kN - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng r(17);
    constexpr int kN = 200000;
    double sum = 0;
    for (int i = 0; i < kN; ++i)
        sum += r.exponential(5.0);
    EXPECT_NEAR(sum / kN, 5.0, 0.1);
}

TEST(Rng, LogNormalMeanMatches)
{
    Rng r(19);
    constexpr int kN = 400000;
    double sum = 0;
    for (int i = 0; i < kN; ++i)
        sum += r.logNormalMean(100.0, 0.3);
    EXPECT_NEAR(sum / kN, 100.0, 1.5);
}

TEST(Rng, BernoulliFrequencyMatches)
{
    Rng r(23);
    int hits = 0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i)
        hits += r.bernoulli(0.3);
    EXPECT_NEAR(hits / static_cast<double>(kN), 0.3, 0.01);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng r(29);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Zipfian, RanksAreSkewed)
{
    // Unscrambled zipf: item 0 must be the most popular and the head
    // must dominate.
    Rng r(31);
    ZipfianGenerator z(1000, 0.99, false);
    std::map<std::uint64_t, int> counts;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i)
        ++counts[z.next(r)];
    int head = 0;
    for (std::uint64_t i = 0; i < 10; ++i)
        head += counts.count(i) ? counts[i] : 0;
    // With theta=0.99 the top-10 of 1000 items draw >30% of requests.
    EXPECT_GT(head, kN * 3 / 10);
    // And item 0 beats item 500 decisively.
    EXPECT_GT(counts[0], 50 * std::max(counts[500], 1));
}

TEST(Zipfian, AllDrawsInRange)
{
    Rng r(37);
    ZipfianGenerator z(123, 0.8, true);
    for (int i = 0; i < 50000; ++i)
        EXPECT_LT(z.next(r), 123u);
}

TEST(Zipfian, ScrambledSpreadsHotItems)
{
    // Scrambled zipfian must not concentrate popularity on low ids.
    Rng r(41);
    ZipfianGenerator z(1000, 0.99, true);
    std::uint64_t low = 0, total = 0;
    for (int i = 0; i < 100000; ++i) {
        const std::uint64_t x = z.next(r);
        low += x < 100;
        ++total;
    }
    // Hot items are scattered: the lowest decile should hold far less
    // than the unscrambled case (~60%) — but it is still nonuniform.
    EXPECT_LT(static_cast<double>(low) / total, 0.4);
}

TEST(Zipfian, DeterministicTrace)
{
    Rng r1(43), r2(43);
    ZipfianGenerator z1(500, 0.9, true), z2(500, 0.9, true);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(z1.next(r1), z2.next(r2));
}

} // namespace
} // namespace pagesim
