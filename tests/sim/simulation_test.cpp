#include <gtest/gtest.h>

#include "sim/actor.hh"
#include "sim/simulation.hh"

namespace pagesim
{
namespace
{

TEST(Simulation, ForkRngByNameIsStableAndDistinct)
{
    Simulation sim(4, 99);
    Rng a1 = sim.forkRng("ssd");
    Rng a2 = sim.forkRng("ssd");
    Rng b = sim.forkRng("policy");
    EXPECT_EQ(a1.nextU64(), a2.nextU64())
        << "same component name -> same stream";
    Rng a3 = sim.forkRng("ssd");
    EXPECT_NE(a3.nextU64(), b.nextU64())
        << "different names -> different streams";
}

TEST(Simulation, SeedChangesAllStreams)
{
    Simulation s1(4, 1), s2(4, 2);
    EXPECT_NE(s1.forkRng("x").nextU64(), s2.forkRng("x").nextU64());
}

TEST(Simulation, RunToCompletionFailsWhenForegroundStuck)
{
    Simulation sim(2, 1);
    // A foreground actor that blocks forever.
    class Stuck : public SimActor
    {
      public:
        explicit Stuck(Simulation &sim) : SimActor(sim, "stuck", true)
        {
        }

      protected:
        void step() override { block(); }
    };
    Stuck actor(sim);
    actor.start();
    EXPECT_FALSE(sim.runToCompletion(1000));
    EXPECT_EQ(sim.foregroundRunning(), 1u);
}

TEST(Simulation, MaxEventsGuardStopsRunaway)
{
    Simulation sim(2, 1);
    class Spinner : public SimActor
    {
      public:
        explicit Spinner(Simulation &sim)
            : SimActor(sim, "spin", true)
        {
        }

      protected:
        void step() override { yieldAfter(1); }
    };
    Spinner actor(sim);
    actor.start();
    EXPECT_FALSE(sim.runToCompletion(500));
    EXPECT_LE(sim.events().dispatched(), 501u);
}

TEST(Simulation, ClockAndCpusAreWired)
{
    Simulation sim(6, 1);
    EXPECT_EQ(sim.cpus().numCpus(), 6u);
    EXPECT_EQ(sim.now(), 0u);
    sim.events().schedule(123, [] {});
    sim.events().run();
    EXPECT_EQ(sim.now(), 123u);
    EXPECT_EQ(sim.seed(), 1u);
}

} // namespace
} // namespace pagesim
