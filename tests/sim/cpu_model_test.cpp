#include <gtest/gtest.h>

#include "sim/cpu_model.hh"

namespace pagesim
{
namespace
{

TEST(CpuModel, NoDilationWhenUndersubscribed)
{
    CpuModel cpus(4);
    cpus.onRunnable(0);
    cpus.onRunnable(0);
    EXPECT_DOUBLE_EQ(cpus.loadFactor(), 1.0);
    EXPECT_EQ(cpus.wallTimeFor(1000), 1000u);
}

TEST(CpuModel, DilatesProportionallyWhenOversubscribed)
{
    CpuModel cpus(2);
    for (int i = 0; i < 6; ++i)
        cpus.onRunnable(0);
    EXPECT_DOUBLE_EQ(cpus.loadFactor(), 3.0);
    EXPECT_EQ(cpus.wallTimeFor(1000), 3000u);
}

TEST(CpuModel, BlockedReducesLoad)
{
    CpuModel cpus(1);
    cpus.onRunnable(0);
    cpus.onRunnable(0);
    EXPECT_DOUBLE_EQ(cpus.loadFactor(), 2.0);
    cpus.onBlocked(10);
    EXPECT_DOUBLE_EQ(cpus.loadFactor(), 1.0);
}

TEST(CpuModel, TracksPeakRunnable)
{
    CpuModel cpus(2);
    cpus.onRunnable(0);
    cpus.onRunnable(0);
    cpus.onRunnable(0);
    cpus.onBlocked(5);
    cpus.onBlocked(5);
    EXPECT_EQ(cpus.peakRunnable(), 3u);
    EXPECT_EQ(cpus.runnable(), 1u);
}

TEST(CpuModel, MeanRunnableTimeWeighted)
{
    CpuModel cpus(8);
    cpus.onRunnable(0);  // 1 runnable over [0, 100)
    cpus.onRunnable(100); // 2 runnable over [100, 200)
    const double mean = cpus.meanRunnable(200);
    EXPECT_DOUBLE_EQ(mean, 1.5);
}

TEST(CpuModel, ExactCpuCountIsNotOversubscribed)
{
    CpuModel cpus(3);
    for (int i = 0; i < 3; ++i)
        cpus.onRunnable(0);
    EXPECT_DOUBLE_EQ(cpus.loadFactor(), 1.0);
}

} // namespace
} // namespace pagesim
