#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "swap/ssd_device.hh"

namespace pagesim
{
namespace
{

SsdConfig
fixedLatency(SimDuration lat, unsigned parallelism)
{
    SsdConfig cfg;
    cfg.readLatency = lat;
    cfg.writeLatency = lat;
    cfg.parallelism = parallelism;
    cfg.jitterSigma = 0.0;
    cfg.gcFactor = 1.0; // deterministic service for unit tests
    return cfg;
}

TEST(SsdDevice, SingleReadCompletesAfterServiceTime)
{
    EventQueue events;
    SsdSwapDevice ssd(events, Rng(1), fixedLatency(msecs(7), 8));
    bool done = false;
    ssd.submit(0, false, [&] { done = true; });
    EXPECT_FALSE(done);
    events.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(events.now(), msecs(7));
    EXPECT_EQ(ssd.stats().reads, 1u);
}

TEST(SsdDevice, ParallelOpsOverlap)
{
    EventQueue events;
    SsdSwapDevice ssd(events, Rng(1), fixedLatency(msecs(10), 4));
    int done = 0;
    for (int i = 0; i < 4; ++i)
        ssd.submit(i, false, [&] { ++done; });
    events.run();
    EXPECT_EQ(done, 4);
    EXPECT_EQ(events.now(), msecs(10)) << "4 ops fit in the NCQ window";
}

TEST(SsdDevice, QueueingDelaysExcessOps)
{
    EventQueue events;
    SsdSwapDevice ssd(events, Rng(1), fixedLatency(msecs(10), 2));
    std::vector<SimTime> completions;
    for (int i = 0; i < 4; ++i)
        ssd.submit(i, false, [&] { completions.push_back(events.now()); });
    EXPECT_EQ(ssd.inFlight(), 2u);
    EXPECT_EQ(ssd.queued(), 2u);
    events.run();
    ASSERT_EQ(completions.size(), 4u);
    EXPECT_EQ(completions[1], msecs(10));
    EXPECT_EQ(completions[3], msecs(20)) << "second wave waits";
    EXPECT_GE(ssd.stats().peakQueueDepth, 2u);
}

TEST(SsdDevice, LatencyStatsIncludeQueueing)
{
    EventQueue events;
    SsdSwapDevice ssd(events, Rng(1), fixedLatency(msecs(10), 1));
    ssd.submit(0, true, [] {});
    ssd.submit(1, true, [] {});
    events.run();
    EXPECT_EQ(ssd.stats().writes, 2u);
    // First write: 10ms. Second: 10ms queue + 10ms service = 20ms.
    EXPECT_DOUBLE_EQ(ssd.stats().meanWriteLatency(),
                     static_cast<double>(msecs(15)));
}

TEST(SsdDevice, JitterVariesServiceTimes)
{
    EventQueue events;
    SsdConfig cfg = fixedLatency(msecs(10), 1);
    cfg.jitterSigma = 0.2;
    cfg.gcFactor = 1.0;
    SsdSwapDevice ssd(events, Rng(7), cfg);
    std::vector<SimTime> completions;
    SimTime prev = 0;
    std::vector<SimDuration> services;
    for (int i = 0; i < 20; ++i)
        ssd.submit(i, false, [&] {
            services.push_back(events.now() - prev);
            prev = events.now();
        });
    events.run();
    bool varied = false;
    for (std::size_t i = 1; i < services.size(); ++i)
        varied |= services[i] != services[0];
    EXPECT_TRUE(varied);
    // Mean stays in the right ballpark.
    double sum = 0;
    for (auto s : services)
        sum += static_cast<double>(s);
    EXPECT_NEAR(sum / services.size(), msecs(10), msecs(2));
}

TEST(SsdDevice, IsAsynchronous)
{
    EventQueue events;
    SsdSwapDevice ssd(events, Rng(1));
    EXPECT_FALSE(ssd.synchronous());
    EXPECT_EQ(ssd.cpuCost(0, true), 0u);
}

} // namespace
} // namespace pagesim
