#include <gtest/gtest.h>

#include "swap/zram_device.hh"

namespace pagesim
{
namespace
{

TEST(ZramDevice, IsSynchronous)
{
    ZramSwapDevice zram;
    EXPECT_TRUE(zram.synchronous());
}

TEST(ZramDevice, NominalCosts)
{
    ZramConfig cfg;
    ZramSwapDevice zram(cfg);
    // Unknown slot: nominal latency.
    EXPECT_EQ(zram.cpuCost(0, false), usecs(20));
    EXPECT_EQ(zram.cpuCost(0, true), usecs(35));
}

TEST(ZramDevice, CompressedSizeDeterministicAndBounded)
{
    for (std::uint64_t tag = 0; tag < 5000; ++tag) {
        const std::uint32_t size = ZramSwapDevice::compressedSize(tag);
        EXPECT_EQ(size, ZramSwapDevice::compressedSize(tag));
        EXPECT_GE(size, 64u);
        EXPECT_LE(size, kPageSize);
    }
}

TEST(ZramDevice, MixtureShapeMatchesLzoRle)
{
    // ~12% near-zero, most 25-55%, ~10% high entropy.
    int tiny = 0, mid = 0, big = 0;
    constexpr int kN = 20000;
    for (std::uint64_t tag = 0; tag < kN; ++tag) {
        const double frac =
            ZramSwapDevice::compressedSize(tag) /
            static_cast<double>(kPageSize);
        if (frac < 0.05)
            ++tiny;
        else if (frac < 0.6)
            ++mid;
        else
            ++big;
    }
    EXPECT_NEAR(tiny / double(kN), 0.12, 0.02);
    EXPECT_NEAR(mid / double(kN), 0.78, 0.02);
    EXPECT_NEAR(big / double(kN), 0.10, 0.02);
    // Overall mean ratio lands near LZO-RLE's typical ~0.4.
    double sum = 0;
    for (std::uint64_t tag = 0; tag < kN; ++tag)
        sum += ZramSwapDevice::compressedSize(tag);
    EXPECT_NEAR(sum / kN / kPageSize, 0.42, 0.06);
}

TEST(ZramDevice, PoolAccountsStoredSlots)
{
    ZramSwapDevice zram;
    zram.setContentTag(0, 100);
    zram.setContentTag(1, 200);
    const std::uint64_t two = zram.poolBytes();
    EXPECT_GT(two, 0u);
    // Overwrite replaces, not adds.
    zram.setContentTag(0, 300);
    const std::uint64_t after = zram.poolBytes();
    EXPECT_EQ(after,
              ZramSwapDevice::compressedSize(300) +
                  ZramSwapDevice::compressedSize(200));
    zram.dropSlot(0);
    zram.dropSlot(1);
    EXPECT_EQ(zram.poolBytes(), 0u);
    EXPECT_GE(zram.poolPeakBytes(), two);
}

TEST(ZramDevice, DropUnknownSlotIsNoop)
{
    ZramSwapDevice zram;
    EXPECT_NO_FATAL_FAILURE(zram.dropSlot(42));
    EXPECT_EQ(zram.poolBytes(), 0u);
}

TEST(ZramDevice, CostScalesWithCompressibility)
{
    ZramSwapDevice zram;
    // Find a near-zero page and a high-entropy page.
    std::uint64_t easy = 0, hard = 0;
    for (std::uint64_t tag = 0;; ++tag) {
        const double frac = ZramSwapDevice::compressedSize(tag) /
                            static_cast<double>(kPageSize);
        if (frac < 0.05 && easy == 0)
            easy = tag + 1;
        if (frac > 0.9 && hard == 0)
            hard = tag + 1;
        if (easy && hard)
            break;
    }
    zram.setContentTag(10, easy - 1);
    zram.setContentTag(11, hard - 1);
    EXPECT_LT(zram.cpuCost(10, true), zram.cpuCost(11, true));
}

TEST(ZramDevice, OverflowCountsWhenLimited)
{
    ZramConfig cfg;
    cfg.poolLimitBytes = 1000;
    ZramSwapDevice zram(cfg);
    zram.setContentTag(0, 1);
    zram.setContentTag(1, 2);
    zram.setContentTag(2, 3);
    EXPECT_GT(zram.overflows(), 0u);
}

TEST(ZramDevice, SyncOpStats)
{
    ZramSwapDevice zram;
    zram.noteSyncOp(0, false);
    zram.noteSyncOp(0, true);
    zram.noteSyncOp(0, true);
    EXPECT_EQ(zram.stats().reads, 1u);
    EXPECT_EQ(zram.stats().writes, 2u);
}

} // namespace
} // namespace pagesim
