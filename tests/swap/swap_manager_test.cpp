#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "swap/ssd_device.hh"
#include "swap/swap_manager.hh"
#include "swap/zram_device.hh"

namespace pagesim
{
namespace
{

TEST(SwapManager, AllocatesDistinctSlots)
{
    EventQueue events;
    SsdSwapDevice ssd(events, Rng(1));
    SwapManager mgr(ssd, 10);
    std::set<SwapSlot> seen;
    for (int i = 0; i < 10; ++i) {
        const SwapSlot s = mgr.allocate();
        ASSERT_NE(s, kInvalidSlot);
        EXPECT_TRUE(seen.insert(s).second);
    }
    EXPECT_EQ(mgr.usedSlots(), 10u);
    EXPECT_EQ(mgr.allocate(), kInvalidSlot) << "area exhausted";
}

TEST(SwapManager, ReleaseRecyclesLifo)
{
    EventQueue events;
    SsdSwapDevice ssd(events, Rng(1));
    SwapManager mgr(ssd, 4);
    const SwapSlot a = mgr.allocate();
    const SwapSlot b = mgr.allocate();
    mgr.release(a);
    mgr.release(b);
    EXPECT_EQ(mgr.usedSlots(), 0u);
    EXPECT_EQ(mgr.allocate(), b);
    EXPECT_EQ(mgr.allocate(), a);
}

TEST(SwapManager, ZramReleaseDropsPoolBytes)
{
    ZramSwapDevice zram;
    SwapManager mgr(zram, 8);
    const SwapSlot s = mgr.allocate();
    mgr.recordContents(s, 0x1234);
    EXPECT_GT(zram.poolBytes(), 0u);
    mgr.release(s);
    EXPECT_EQ(zram.poolBytes(), 0u);
}

TEST(SwapManager, RecordContentsOnSsdIsNoop)
{
    EventQueue events;
    SsdSwapDevice ssd(events, Rng(1));
    SwapManager mgr(ssd, 8);
    const SwapSlot s = mgr.allocate();
    EXPECT_NO_FATAL_FAILURE(mgr.recordContents(s, 42));
}

} // namespace
} // namespace pagesim
