/**
 * @file
 * pagesim-lint behavior tests, driven by the fixture corpus under
 * tests/lint/fixtures/. Each fixture tree is a miniature scan root
 * with its own src/ layout, checked against the shared fixture layer
 * table; the final test runs the real configuration against the live
 * tree and requires it clean.
 *
 * Waiver spellings appear below only inside string literals — a
 * comment-spelled waiver here would register as unused and fail the
 * live-tree self check.
 */

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "lint.hh"

namespace
{

using pagesim::lint::Finding;
using pagesim::lint::formatFinding;
using pagesim::lint::hasFatalFindings;
using pagesim::lint::LintOptions;
using pagesim::lint::LintResult;
using pagesim::lint::runLint;

const std::string kSourceDir = PAGESIM_SOURCE_DIR;
const std::string kFixtures = kSourceDir + "/tests/lint/fixtures";

LintResult
lintTree(const std::string &tree,
         const std::string &allow = "allow_empty.txt")
{
    LintOptions options;
    options.root = kFixtures + "/" + tree;
    options.layersFile = kFixtures + "/layers.txt";
    options.allowFile = kFixtures + "/" + allow;
    options.paths = {"src"};
    return runLint(options);
}

int
countRule(const LintResult &result, const std::string &rule)
{
    return static_cast<int>(std::count_if(
        result.findings.begin(), result.findings.end(),
        [&](const Finding &f) { return f.rule == rule; }));
}

int
countUnwaived(const LintResult &result, const std::string &rule)
{
    return static_cast<int>(std::count_if(
        result.findings.begin(), result.findings.end(),
        [&](const Finding &f) { return f.rule == rule && !f.waived; }));
}

const Finding *
findRule(const LintResult &result, const std::string &rule)
{
    for (const Finding &f : result.findings)
        if (f.rule == rule)
            return &f;
    return nullptr;
}

TEST(LintDeterminism, FlagsClocksAndRandomness)
{
    const LintResult r = lintTree("det_bad");
    EXPECT_FALSE(r.configError);
    EXPECT_EQ(r.filesScanned, 2);
    // clock_rand.cc: chrono + steady_clock tokens, the time() call.
    EXPECT_GE(countUnwaived(r, "det-clock"), 3);
    // mt19937 and the rand() call.
    EXPECT_GE(countUnwaived(r, "det-rand"), 2);
    EXPECT_TRUE(hasFatalFindings(r));
}

TEST(LintDeterminism, FlagsPointerKeysAndUnorderedIteration)
{
    const LintResult r = lintTree("det_bad");
    EXPECT_EQ(countUnwaived(r, "det-ptr-hash"), 1);
    EXPECT_EQ(countUnwaived(r, "det-unordered"), 1);
    EXPECT_EQ(countUnwaived(r, "det-unordered-iter"), 1);
    const Finding *iter = findRule(r, "det-unordered-iter");
    ASSERT_NE(iter, nullptr);
    EXPECT_EQ(iter->file, "src/mem/ptr_keys.hh");
    EXPECT_NE(iter->message.find("byPtr"), std::string::npos);
}

TEST(LintDeterminism, OrderedSpellingsAndWaiversPass)
{
    const LintResult r = lintTree("det_good");
    EXPECT_FALSE(r.configError);
    EXPECT_FALSE(hasFatalFindings(r));
    // The one unordered container is reported, but waived.
    EXPECT_EQ(countRule(r, "det-unordered"), 1);
    EXPECT_EQ(countRule(r, "det-unordered-iter"), 0);
}

TEST(LintMutator, FlagsEveryDirectPteSpelling)
{
    const LintResult r = lintTree("mut_bad");
    EXPECT_FALSE(r.configError);
    // setFlag, clearFlag, mapFrame/1, unmapToSwap/2,
    // testAndClearAccessed/0 — and nothing for the PageTable
    // spellings or the untracked Dirty write.
    EXPECT_EQ(countUnwaived(r, "mut-pte"), 5);
    // prev/next/listId assignments in relink — and nothing for the
    // FrameList call, lane reads, comparisons, or untracked lanes.
    EXPECT_EQ(countUnwaived(r, "mut-pageinfo"), 3);
    // memcg lane assignments in recharge — and nothing for the
    // setMemcg/memcg() accessors, lane reads, or comparisons.
    EXPECT_EQ(countUnwaived(r, "mut-memcg"), 2);
    EXPECT_EQ(static_cast<int>(r.findings.size()), 10);
}

TEST(LintMutator, TrackedMutatorsAndWaiversPass)
{
    const LintResult r = lintTree("mut_good");
    EXPECT_FALSE(hasFatalFindings(r));
    EXPECT_EQ(countRule(r, "mut-pte"), 1);      // reported, waived
    EXPECT_EQ(countRule(r, "mut-pageinfo"), 1); // reported, waived
    EXPECT_EQ(countRule(r, "mut-memcg"), 1);    // reported, waived
}

TEST(LintLayering, FlagsBackEdgesAndTestIncludes)
{
    const LintResult r = lintTree("layer_bad");
    EXPECT_FALSE(r.configError);
    // mem -> kernel (back_edge.hh) and sim -> mem (up_edge.cc).
    EXPECT_EQ(countUnwaived(r, "layer-dag"), 2);
    EXPECT_EQ(countUnwaived(r, "layer-test"), 1);
}

TEST(LintLayering, SanctionedEdgesPass)
{
    const LintResult r = lintTree("layer_good");
    EXPECT_FALSE(r.configError);
    EXPECT_EQ(r.findings.size(), 0u);
}

TEST(LintCharge, FlagsUnchargedSubmit)
{
    const LintResult r = lintTree("charge_bad");
    EXPECT_EQ(countUnwaived(r, "charge-pair"), 1);
    EXPECT_TRUE(hasFatalFindings(r));
}

TEST(LintCharge, ChargedAndWaivedSubmitsPass)
{
    const LintResult r = lintTree("charge_good");
    EXPECT_FALSE(hasFatalFindings(r));
    EXPECT_EQ(countRule(r, "charge-pair"), 1); // the waived free issue
}

TEST(LintWaivers, EmptyReasonStaysFatal)
{
    const LintResult r = lintTree("waiver_bad");
    EXPECT_EQ(countUnwaived(r, "det-clock"), 1);
    EXPECT_EQ(countUnwaived(r, "lint-waiver-reason"), 1);
    EXPECT_TRUE(hasFatalFindings(r));
}

TEST(LintWaivers, UnusedWaiverIsAFinding)
{
    const LintResult r = lintTree("waiver_bad");
    EXPECT_EQ(countUnwaived(r, "lint-unused-waiver"), 1);
}

TEST(LintWaivers, ReasonSurvivesRoundTrip)
{
    const LintResult r = lintTree("waiver_good");
    EXPECT_FALSE(hasFatalFindings(r));
    const Finding *f = findRule(r, "det-rand");
    ASSERT_NE(f, nullptr);
    EXPECT_TRUE(f->waived);
    EXPECT_EQ(f->waiverReason,
              "seeded replay uses the documented fixture stream");
}

TEST(LintAllowlist, FileEntryWaivesWithRecordedReason)
{
    const LintResult r = lintTree("allowlist", "allow_mut.txt");
    EXPECT_FALSE(hasFatalFindings(r));
    const Finding *f = findRule(r, "mut-pte");
    ASSERT_NE(f, nullptr);
    EXPECT_TRUE(f->waived);
    EXPECT_EQ(f->waiverReason.rfind("allow.txt: ", 0), 0u);
}

TEST(LintAllowlist, WithoutEntryTheSameFindingIsFatal)
{
    const LintResult r = lintTree("allowlist");
    EXPECT_EQ(countUnwaived(r, "mut-pte"), 1);
    EXPECT_TRUE(hasFatalFindings(r));
}

TEST(LintConfig, MissingLayerTableIsAConfigError)
{
    LintOptions options;
    options.root = kFixtures + "/det_good";
    options.layersFile = kFixtures + "/no_such_layers.txt";
    options.allowFile = kFixtures + "/allow_empty.txt";
    options.paths = {"src"};
    const LintResult r = runLint(options);
    EXPECT_TRUE(r.configError);
    EXPECT_TRUE(hasFatalFindings(r));
}

/**
 * The contract the CI lint job enforces, restated as a test: the live
 * tree lints clean with the checked-in layer table and allowlist, and
 * every reported finding carries a written waiver reason.
 */
TEST(LintSelfCheck, LiveTreeIsClean)
{
    LintOptions options;
    options.root = kSourceDir;
    const LintResult r = runLint(options);
    EXPECT_FALSE(r.configError) << r.configErrorMessage;
    EXPECT_GT(r.filesScanned, 150);
    for (const Finding &f : r.findings) {
        EXPECT_TRUE(f.waived) << formatFinding(f);
        EXPECT_FALSE(f.waiverReason.empty()) << formatFinding(f);
    }
    EXPECT_FALSE(hasFatalFindings(r));
}

} // namespace
