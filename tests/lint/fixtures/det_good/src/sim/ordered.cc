// Fixture: the deterministic spellings pass clean — ordered map
// iteration is fine, and the one unordered container carries a
// written waiver. Expected: exactly one det-unordered finding, waived.
#include <map>
#include <unordered_set>

namespace fixture
{

// lint:ordered-ok(membership filter only; never iterated, so its order cannot reach simulated state)
std::unordered_set<int> makeFilter();

int
orderedSum(const std::map<int, int> &m)
{
    int total = 0;
    for (const auto &kv : m)
        total += kv.second;
    return total;
}

} // namespace fixture
