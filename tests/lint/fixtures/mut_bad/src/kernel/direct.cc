// Fixture: every Pte-level spelling of a tracked mutation, next to
// the PageTable spellings that must NOT flag. Expected: exactly five
// mut-pte findings (setFlag, clearFlag, mapFrame/1, unmapToSwap/2,
// testAndClearAccessed/0); the table calls and the untracked Dirty
// write stay clean.
#include "mem/page_table.hh"

namespace fixture
{

void
touch(Pte &pte, PageTable &table, Vpn vpn, Pfn pfn, SwapSlot slot)
{
    pte.setFlag(Pte::Accessed);
    pte.clearFlag(Pte::Present);
    pte.mapFrame(pfn);
    pte.unmapToSwap(slot, 0);
    pte.testAndClearAccessed();

    table.mapFrame(vpn, pfn);
    table.testAndClearAccessed(vpn);
    table.unmapToSwap(vpn, slot, 0);
    pte.setFlag(Pte::Dirty);
}

} // namespace fixture
