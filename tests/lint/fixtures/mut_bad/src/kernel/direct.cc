// Fixture: every Pte-level spelling of a tracked mutation, next to
// the PageTable spellings that must NOT flag. Expected: exactly five
// mut-pte findings (setFlag, clearFlag, mapFrame/1, unmapToSwap/2,
// testAndClearAccessed/0); the table calls and the untracked Dirty
// write stay clean. Plus exactly three mut-pageinfo findings (the
// prev/next/listId assignments in relink); the reads, comparisons,
// and untracked-lane writes stay clean. Plus exactly two mut-memcg
// findings (the charge-lane assignments in recharge); the comparison,
// read, and accessor calls stay clean.
#include "mem/page_table.hh"

namespace fixture
{

void
touch(Pte &pte, PageTable &table, Vpn vpn, Pfn pfn, SwapSlot slot)
{
    pte.setFlag(Pte::Accessed);
    pte.clearFlag(Pte::Present);
    pte.mapFrame(pfn);
    pte.unmapToSwap(slot, 0);
    pte.testAndClearAccessed();

    table.mapFrame(vpn, pfn);
    table.testAndClearAccessed(vpn);
    table.unmapToSwap(vpn, slot, 0);
    pte.setFlag(Pte::Dirty);
}

void
relink(PageInfoRef pi, FrameList &list, Pfn pfn)
{
    pi.prev = pfn;          // flagged: link lane write
    pi->next = kInvalidPfn; // flagged: arrow spelling too
    pi.listId = 3;          // flagged: membership lane write

    list.pushBack(pfn);     // the sanctioned spelling
    const Pfn p = pi.prev;  // read: clean
    if (pi.next == pfn)     // comparison: clean
        pi.gen = 0;         // untracked lane: clean
    (void)p;
}

void
recharge(PageInfoRef pi, AddressSpace &space)
{
    pi.memcg = 0;            // flagged: charge lane write
    pi->memcg = kNoMemcg;    // flagged: arrow spelling too

    space.setMemcg(1);       // different mutator name: clean
    const MemcgId g = pi.memcg; // read: clean
    if (pi.memcg == kNoMemcg)   // comparison: clean
        (void)space.memcg();    // accessor call: clean
    (void)g;
}

} // namespace fixture
