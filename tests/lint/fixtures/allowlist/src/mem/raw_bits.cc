// Fixture: this direct write has no inline waiver; the allow_mut.txt
// allowlist excuses it file-wide. Expected with allow_mut.txt: one
// mut-pte finding, waived via allow.txt. Expected with the empty
// allowlist: the same finding, fatal.
#include "mem/pte.hh"

namespace fixture
{

void
raw(Pte &pte)
{
    pte.setFlag(Pte::Accessed);
}

} // namespace fixture
