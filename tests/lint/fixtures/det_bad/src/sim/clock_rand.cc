// Fixture: wall clocks and ambient randomness in a simulation layer.
// Expected: det-clock on wallNow()'s body and the time() call,
// det-rand on mt19937 and the rand() call. Nothing is waived.
#include <chrono>
#include <random>

namespace fixture
{

unsigned long
wallNow()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}

long
wallSeconds()
{
    return time(nullptr);
}

int
ambient()
{
    std::mt19937 gen(42);
    return rand() + static_cast<int>(gen());
}

} // namespace fixture
