// Fixture: pointer-keyed unordered state that is then iterated.
// Expected: det-ptr-hash and det-unordered on the member declaration,
// det-unordered-iter on the range-for. Nothing is waived.
#pragma once

#include <unordered_map>

namespace fixture
{

struct PtrKeyed
{
    std::unordered_map<const void *, int> byPtr;

    int sum() const
    {
        int total = 0;
        for (const auto &kv : byPtr)
            total += kv.second;
        return total;
    }
};

} // namespace fixture
