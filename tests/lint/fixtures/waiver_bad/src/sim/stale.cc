// Fixture: a waiver with an empty reason must NOT excuse its finding,
// and a waiver that matches nothing is itself a finding. Expected:
// one det-clock unwaived, one lint-waiver-reason, one
// lint-unused-waiver.
namespace fixture
{

long
wallSeconds()
{
    // lint:clock-ok()
    return time(nullptr);
}

int
pure()
{
    // lint:rand-ok(stale waiver: the violation it excused is gone)
    return 7;
}

} // namespace fixture
