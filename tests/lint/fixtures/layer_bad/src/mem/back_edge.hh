// Fixture: a back-edge (mem including kernel) and a reach into test
// code. Expected: one layer-dag and one layer-test finding.
#pragma once

#include "kernel/mm.hh"
#include "../tests/helper.hh"
