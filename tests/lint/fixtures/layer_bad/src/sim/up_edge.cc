// Fixture: sim is a substrate and declares no dependencies, so this
// include is an up-edge. Expected: one layer-dag finding.
#include "mem/page.hh"
