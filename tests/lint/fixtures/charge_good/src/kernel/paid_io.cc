// Fixture: a submit paired with a charge in the same body passes; a
// deliberately free submit carries a waiver. Expected: one
// charge-pair finding, waived.
#include "kernel/device.hh"

namespace fixture
{

void
issuePaid(Device &dev, CostSink &costs, SwapSlot slot)
{
    costs.charge(kSubmitCost);
    dev.submit(slot, false, [] {});
}

void
issueWaived(Device &dev, SwapSlot slot)
{
    // lint:charge-ok(fixture: the device models its own service time and no thread blocks on this issue)
    dev.submit(slot, false, [] {});
}

} // namespace fixture
