// Fixture: tracked mutations through PageTable plus one waived direct
// write per rule. Expected: exactly one mut-pte finding, one
// mut-pageinfo finding, and one mut-memcg finding, all waived.
#include "mem/page_table.hh"

namespace fixture
{

void
touch(Pte &pte, PageTable &table, Vpn vpn)
{
    table.setAccessed(vpn);
    // lint:pte-direct-ok(fixture demonstrates the waiver path; the caller reconciled the bitmap word already)
    pte.clearFlag(Pte::Accessed);
    pte.setFlag(Pte::Dirty);
}

void
relink(PageInfoRef pi, Pfn pfn)
{
    // lint:pageinfo-direct-ok(fixture demonstrates the waiver path; list membership reconciled by the caller)
    pi.next = pfn;
}

void
recharge(PageInfoRef pi)
{
    // lint:memcg-direct-ok(fixture demonstrates the waiver path; usage counter reconciled by the caller)
    pi.memcg = kNoMemcg;
}

} // namespace fixture
