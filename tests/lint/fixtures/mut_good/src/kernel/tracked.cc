// Fixture: tracked mutations through PageTable plus one waived direct
// write. Expected: exactly one mut-pte finding, waived.
#include "mem/page_table.hh"

namespace fixture
{

void
touch(Pte &pte, PageTable &table, Vpn vpn)
{
    table.setAccessed(vpn);
    // lint:pte-direct-ok(fixture demonstrates the waiver path; the caller reconciled the bitmap word already)
    pte.clearFlag(Pte::Accessed);
    pte.setFlag(Pte::Dirty);
}

} // namespace fixture
