// Fixture: only table-sanctioned edges (kernel -> mem, kernel -> sim),
// a same-layer include, and an angled system include. Expected: clean.
#include "kernel/other.hh"

#include <vector>

#include "mem/page.hh"
#include "sim/simulation.hh"
