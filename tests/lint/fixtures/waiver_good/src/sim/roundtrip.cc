// Fixture: the waiver reason must survive the lex -> finding round
// trip byte for byte. Expected: one det-rand finding, waived, whose
// reason is exactly the text inside the parentheses.
namespace fixture
{

int
seeded()
{
    // lint:rand-ok(seeded replay uses the documented fixture stream)
    return rand();
}

} // namespace fixture
