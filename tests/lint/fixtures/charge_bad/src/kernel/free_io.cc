// Fixture: a device submit whose enclosing function never pays a
// cost. Expected: one charge-pair finding, unwaived.
#include "kernel/device.hh"

namespace fixture
{

void
issueFree(Device &dev, SwapSlot slot)
{
    dev.submit(slot, false, [] {});
}

} // namespace fixture
