/**
 * @file
 * Tests for the BENCH_core.json schema validator: a known-good
 * document passes, and each class of corruption (missing field, bad
 * type, non-positive speedup, diverged sweep) is reported with a
 * path-qualified message.
 */

#include <gtest/gtest.h>

#include <string>

#include "metrics/bench_schema.hh"

namespace pagesim
{
namespace
{

/** A minimal document with every field perf_core emits. */
std::string
goodDocument()
{
    return R"({
  "schema_version": 1,
  "host": {"cores": 8},
  "event_queue": {
    "events": 3000000,
    "outstanding": 2048,
    "hold": {
      "legacy_heap_events_per_sec": 4000000,
      "wheel_events_per_sec": 8000000,
      "speedup": 2.0
    },
    "churn": {
      "legacy_heap_events_per_sec": 3000000,
      "wheel_events_per_sec": 5000000,
      "speedup": 1.66
    },
    "speedup": 2.0
  },
  "aging_scan": {
    "pages": 65536,
    "passes": 24,
    "patterns": {
      "dense": {
        "reference_ptes_per_sec": 100000000,
        "word_ptes_per_sec": 400000000,
        "speedup": 4.0
      },
      "sparse": {
        "reference_ptes_per_sec": 200000000,
        "word_ptes_per_sec": 900000000,
        "speedup": 4.5
      },
      "ten_pct_accessed": {
        "reference_ptes_per_sec": 150000000,
        "word_ptes_per_sec": 600000000,
        "speedup": 4.0
      }
    },
    "geomean_speedup": 4.16
  },
  "trial": {
    "cell": "TPC-H/MG-LRU/SSD/50%",
    "scale": "Small",
    "estimator": "min of 5",
    "wall_seconds": 0.01
  },
  "metrics_overhead": {
    "cell": "TPC-H/MG-LRU/SSD/50%",
    "scale": "Small",
    "estimator": "min of 175 interleaved rounds, process CPU time",
    "detached_seconds": 0.009,
    "counters_seconds": 0.0091,
    "full_sampler_seconds": 0.0093,
    "counters_overhead_pct": 0.4,
    "full_sampler_overhead_pct": -1.2
  },
  "big_machine": {
    "pages": 67108864,
    "scan": {
      "workers": 4,
      "passes": 3,
      "serial_ptes_per_sec": 300000000,
      "sharded_ptes_per_sec": 600000000,
      "speedup": 2.0
    },
    "trial": {
      "cell": "YCSB-A/MG-LRU/SSD/50%",
      "scale": "Big64M",
      "wall_seconds": 106.4,
      "faults_per_sec": 316000
    },
    "fingerprint_identity": true
  },
  "sweep": {
    "cells": 6,
    "trials_per_cell": 3,
    "estimator": "min of 3 alternating rounds",
    "serial_cells_seconds": 0.2,
    "pooled_sweep_seconds": 0.1,
    "speedup": 2.0,
    "degraded_to_serial": false,
    "identical_results": true
  },
  "checkpoint": {
    "sweep": {
      "cells": 4,
      "trials_per_cell": 3,
      "boundary_refs": 80000,
      "estimator": "min of 3 rounds",
      "cold_seconds": 0.5,
      "warm_seconds": 0.1,
      "speedup": 5.0,
      "identical_results": true
    },
    "big64m_first_measurement": {
      "boundary_refs": 50000000,
      "full_detail_seconds": 60.0,
      "functional_seconds": 20.0,
      "speedup": 3.0
    }
  }
})";
}

/** Replace the first occurrence of @p from with @p to. */
std::string
patch(std::string doc, const std::string &from, const std::string &to)
{
    const std::size_t pos = doc.find(from);
    EXPECT_NE(pos, std::string::npos) << from;
    doc.replace(pos, from.size(), to);
    return doc;
}

/** The single problem message, which must mention @p path. */
void
expectOneProblemAt(const std::vector<std::string> &problems,
                   const std::string &path)
{
    ASSERT_EQ(problems.size(), 1u)
        << (problems.empty() ? "no problems" : problems.front());
    EXPECT_NE(problems.front().find(path), std::string::npos)
        << problems.front();
}

TEST(BenchSchema, GoodDocumentPasses)
{
    const auto problems = validateBenchCore(goodDocument());
    EXPECT_TRUE(problems.empty())
        << problems.size() << " problems, first: " << problems.front();
}

TEST(BenchSchema, RejectsUnparsableText)
{
    const auto problems = validateBenchCore("{not json");
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems.front().find("parse"), std::string::npos);
}

TEST(BenchSchema, RejectsNonObjectDocument)
{
    const auto problems = validateBenchCore("[1, 2, 3]");
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems.front().find("not a JSON object"),
              std::string::npos);
}

TEST(BenchSchema, DetectsMissingSection)
{
    const auto problems = validateBenchCore(patch(
        goodDocument(), "\"aging_scan\"", "\"renamed_scan\""));
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems.front().find("aging_scan"), std::string::npos);
}

TEST(BenchSchema, DetectsMissingField)
{
    const auto problems = validateBenchCore(patch(
        goodDocument(), "\"wall_seconds\"", "\"walls_seconds\""));
    expectOneProblemAt(problems, "trial.wall_seconds");
}

TEST(BenchSchema, DetectsNonPositiveSpeedup)
{
    const auto problems = validateBenchCore(
        patch(goodDocument(), "\"geomean_speedup\": 4.16",
              "\"geomean_speedup\": 0"));
    expectOneProblemAt(problems, "aging_scan.geomean_speedup");
}

TEST(BenchSchema, DetectsNegativeThroughput)
{
    const auto problems = validateBenchCore(
        patch(goodDocument(), "\"word_ptes_per_sec\": 900000000",
              "\"word_ptes_per_sec\": -1"));
    expectOneProblemAt(problems,
                       "aging_scan.patterns.sparse.word_ptes_per_sec");
}

TEST(BenchSchema, DetectsWrongFieldType)
{
    const auto problems = validateBenchCore(
        patch(goodDocument(), "\"wall_seconds\": 0.01",
              "\"wall_seconds\": \"fast\""));
    expectOneProblemAt(problems, "trial.wall_seconds");
}

TEST(BenchSchema, DetectsDivergedSweep)
{
    const auto problems = validateBenchCore(
        patch(goodDocument(), "\"identical_results\": true",
              "\"identical_results\": false"));
    expectOneProblemAt(problems, "sweep.identical_results");
}

TEST(BenchSchema, DetectsMissingDegradedFlag)
{
    const auto problems = validateBenchCore(
        patch(goodDocument(), "\"degraded_to_serial\": false,", ""));
    expectOneProblemAt(problems, "sweep.degraded_to_serial");
}

TEST(BenchSchema, NegativeOverheadPctIsAllowed)
{
    // Below-noise-floor measurements are legitimately negative; only
    // non-finite values are malformed.
    const auto problems = validateBenchCore(
        patch(goodDocument(), "\"counters_overhead_pct\": 0.4",
              "\"counters_overhead_pct\": -0.8"));
    EXPECT_TRUE(problems.empty());
}

TEST(BenchSchema, DetectsMissingBigMachineScanField)
{
    const auto problems = validateBenchCore(
        patch(goodDocument(), "\"sharded_ptes_per_sec\"",
              "\"shredded_ptes_per_sec\""));
    expectOneProblemAt(problems,
                       "big_machine.scan.sharded_ptes_per_sec");
}

TEST(BenchSchema, DetectsNonPositiveBigMachineWall)
{
    const auto problems = validateBenchCore(
        patch(goodDocument(), "\"wall_seconds\": 106.4",
              "\"wall_seconds\": 0"));
    expectOneProblemAt(problems, "big_machine.trial.wall_seconds");
}

TEST(BenchSchema, DetectsBigMachineFingerprintDivergence)
{
    const auto problems = validateBenchCore(
        patch(goodDocument(), "\"fingerprint_identity\": true",
              "\"fingerprint_identity\": false"));
    expectOneProblemAt(problems, "big_machine.fingerprint_identity");
}

TEST(BenchSchema, DetectsMissingCheckpointSection)
{
    const auto problems = validateBenchCore(patch(
        goodDocument(), "\"checkpoint\"", "\"checkpoints\""));
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems.front().find("checkpoint"), std::string::npos);
}

TEST(BenchSchema, DetectsNonPositiveCheckpointSpeedup)
{
    const auto problems = validateBenchCore(
        patch(goodDocument(), "\"speedup\": 5.0", "\"speedup\": 0"));
    expectOneProblemAt(problems, "checkpoint.sweep.speedup");
}

TEST(BenchSchema, DetectsDivergedCheckpointRestore)
{
    // The checkpoint sweep's identity flag is the SECOND occurrence;
    // patch it via its unique neighbourhood.
    const auto problems = validateBenchCore(
        patch(goodDocument(), "\"speedup\": 5.0,\n      \"identical_results\": true",
              "\"speedup\": 5.0,\n      \"identical_results\": false"));
    expectOneProblemAt(problems, "checkpoint.sweep.identical_results");
}

TEST(BenchSchema, DetectsMissingFirstMeasurementField)
{
    const auto problems = validateBenchCore(
        patch(goodDocument(), "\"functional_seconds\"",
              "\"functional_minutes\""));
    expectOneProblemAt(
        problems, "checkpoint.big64m_first_measurement.functional_seconds");
}

TEST(BenchSchema, ReportsMultipleProblems)
{
    std::string doc = goodDocument();
    doc = patch(doc, "\"wall_seconds\": 0.01", "\"wall_seconds\": 0");
    doc = patch(doc, "\"identical_results\": true",
                "\"identical_results\": false");
    const auto problems = validateBenchCore(doc);
    EXPECT_EQ(problems.size(), 2u);
}

} // namespace
} // namespace pagesim
