/**
 * @file
 * Per-trial metrics artifact naming. Trials run in parallel and
 * colocated tenants share one label, so the basename must carry both
 * the trial seed and (when set) the tenant name — otherwise two
 * writers silently clobber each other's trace/timeseries/jsonl files.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "harness/experiment.hh"

namespace pagesim
{
namespace
{

namespace fs = std::filesystem;

struct ArtifactDir : ::testing::Test
{
    fs::path dir;

    void
    SetUp() override
    {
        dir = fs::temp_directory_path() / "pagesim_artifact_naming";
        fs::remove_all(dir);
    }

    void TearDown() override { fs::remove_all(dir); }
};

TEST_F(ArtifactDir, BasenameCarriesSeedAndTenant)
{
    const MetricsSnapshot empty;
    const std::string base = writeTrialArtifacts(
        dir.string(), "colo[a+b]/mglru/ssd/50%", 1234, empty, "ycsb");
    EXPECT_NE(base.find("ycsb"), std::string::npos);
    EXPECT_NE(base.find("seed1234"), std::string::npos);
    // Sanitized for the filesystem: no separators or shell-hostile
    // characters survive from the label.
    EXPECT_EQ(base.find('/'), std::string::npos);
    EXPECT_EQ(base.find('%'), std::string::npos);
    for (const char *ext :
         {".trace.json", ".timeseries.csv", ".metrics.jsonl"}) {
        EXPECT_TRUE(fs::exists(dir / (base + ext))) << ext;
    }
}

TEST_F(ArtifactDir, ColocatedTenantsAndTrialsNeverCollide)
{
    // Regression: one shared label used to produce one basename per
    // trial regardless of tenant, so an N-tenant trial kept only the
    // last tenant's files.
    const MetricsSnapshot empty;
    const std::string label = "colo[a+b]/mglru/ssd/50%";
    std::set<std::string> bases;
    for (const std::uint64_t seed : {7ull, 8ull}) {
        for (const char *tenant : {"a", "b"}) {
            bases.insert(writeTrialArtifacts(dir.string(), label, seed,
                                             empty, tenant));
        }
    }
    EXPECT_EQ(bases.size(), 4u) << "every (tenant, seed) pair unique";
    // Four complete artifact sets landed on disk.
    std::size_t files = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        (void)entry;
        ++files;
    }
    EXPECT_EQ(files, 12u);
}

TEST_F(ArtifactDir, LegacySingleTenantNamesUnchanged)
{
    // The historical single-workload path passes no tenant; its
    // basenames keep the label-seed shape existing tooling parses.
    const MetricsSnapshot empty;
    const std::string base = writeTrialArtifacts(
        dir.string(), "ycsb_a/mglru/ssd/50%", 42, empty);
    EXPECT_EQ(base, "ycsb_a_mglru_ssd_50_-seed42");
}

} // namespace
} // namespace pagesim
