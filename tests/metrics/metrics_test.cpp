/**
 * @file
 * Metrics-layer tests: registry handles and snapshot ordering, fault
 * span bookkeeping and the phase-sum reconciliation invariant,
 * deferred aggregation, exporter well-formedness (the Chrome trace
 * must parse), and cross-trial snapshot determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "../kernel/kernel_test_util.hh"
#include "harness/experiment.hh"
#include "metrics/collector.hh"
#include "metrics/export.hh"
#include "metrics/fault_spans.hh"
#include "metrics/json.hh"
#include "metrics/registry.hh"

namespace pagesim
{
namespace
{

// ---- MetricsRegistry ------------------------------------------------

TEST(MetricsRegistry, HandlesAreStableAndNamesResolveOnce)
{
    MetricsRegistry reg;
    const CounterId c1 = reg.counter("a.count");
    const CounterId c2 = reg.counter("b.count");
    EXPECT_NE(c1.idx, c2.idx);
    // Same name -> same handle, no duplicate registration.
    EXPECT_EQ(reg.counter("a.count").idx, c1.idx);
    EXPECT_EQ(reg.counterNames().size(), 2u);

    reg.add(c1);
    reg.add(c1, 4);
    EXPECT_EQ(reg.value(c1), 5u);
    EXPECT_EQ(reg.value(c2), 0u);

    const GaugeId g = reg.gauge("depth");
    reg.set(g, 2.5);
    EXPECT_DOUBLE_EQ(reg.value(g), 2.5);

    const HistogramId h = reg.histogram("lat");
    reg.record(h, 100);
    reg.record(h, 300);
    EXPECT_EQ(reg.at(h).count(), 2u);
    EXPECT_DOUBLE_EQ(reg.at(h).mean(), 200.0);
}

TEST(MetricsRegistry, SnapshotPreservesRegistrationOrder)
{
    MetricsConfig cfg;
    cfg.mode = MetricsMode::Counters;
    MetricsCollector collector(cfg);
    MetricsRegistry &reg = collector.registry();
    reg.counter("z.last");
    reg.counter("a.first");
    const MetricsSnapshot snap = collector.snapshot(0);
    // Registration order, NOT lexicographic: deterministic wiring
    // gives deterministic snapshots.
    const auto &names = snap.counterNames;
    const auto zi = std::find(names.begin(), names.end(), "z.last");
    const auto ai = std::find(names.begin(), names.end(), "a.first");
    ASSERT_NE(zi, names.end());
    ASSERT_NE(ai, names.end());
    EXPECT_LT(zi - names.begin(), ai - names.begin());
}

// ---- FaultSpanRecorder ----------------------------------------------

TEST(FaultSpans, DemandSpanPhasesPartitionWallExactly)
{
    MetricsRegistry reg;
    FaultSpanRecorder rec(reg);
    const std::uint32_t tok = rec.openDemand(1000, 42, 1, 77);
    EXPECT_EQ(rec.pendingCount(), 1u);
    // Device reports 600 queue wait over a 1500ns wall interval.
    rec.closeDemand(tok, 2500, 600, 900);
    EXPECT_EQ(rec.pendingCount(), 0u);
    ASSERT_EQ(rec.spans().size(), 1u);
    const FaultSpan &s = rec.spans().front();
    EXPECT_EQ(s.kind, FaultSpanKind::DemandAsync);
    EXPECT_EQ(s.total(), 1500u);
    EXPECT_EQ(s.phaseSum(), s.total());
    EXPECT_EQ(
        s.phase[static_cast<std::size_t>(FaultPhase::SwapQueueWait)],
        600u);
    EXPECT_EQ(
        s.phase[static_cast<std::size_t>(FaultPhase::DeviceService)],
        900u);
    EXPECT_EQ(s.reclaimCpu, 77u);
}

TEST(FaultSpans, SyncDemandHasZeroWallAndCpuAttribution)
{
    MetricsRegistry reg;
    FaultSpanRecorder rec(reg);
    rec.recordSyncDemand(5000, 7, 2, 11, 350);
    ASSERT_EQ(rec.spans().size(), 1u);
    const FaultSpan &s = rec.spans().front();
    EXPECT_EQ(s.kind, FaultSpanKind::DemandSync);
    EXPECT_EQ(s.total(), 0u);
    EXPECT_EQ(s.phaseSum(), 0u);
    EXPECT_EQ(s.deviceCpu, 350u);
}

TEST(FaultSpans, IoWaitLivesInActorSlotAndClosesOnce)
{
    Simulation sim(1, 7);
    ProbeActor actor(sim, [](ProbeActor &a) { a.finish(); });
    MetricsRegistry reg;
    FaultSpanRecorder rec(reg);

    // Closing with no open wait is a no-op (the demand-issuing actor
    // is woken through the same waiter list).
    rec.closeIoWait(actor, 100, FaultPhase::SharedSwapInWait);
    EXPECT_TRUE(rec.spans().empty());

    rec.openIoWait(actor, 9, 1000, 3);
    EXPECT_EQ(rec.pendingCount(), 1u);
    rec.closeIoWait(actor, 1800, FaultPhase::WritebackRemapWait);
    EXPECT_EQ(rec.pendingCount(), 0u);
    ASSERT_EQ(rec.spans().size(), 1u);
    const FaultSpan &s = rec.spans().front();
    EXPECT_EQ(s.kind, FaultSpanKind::IoWaitRemap);
    EXPECT_EQ(s.total(), 800u);
    EXPECT_EQ(s.phaseSum(), s.total());

    // The slot is free again: a second close is a no-op.
    rec.closeIoWait(actor, 2000, FaultPhase::WritebackRemapWait);
    EXPECT_EQ(rec.spans().size(), 1u);
}

TEST(FaultSpans, DeferredAggregationIsExactAndNeverDropsData)
{
    MetricsRegistry reg;
    // Retain at most 2 spans; the third is dropped from retention but
    // must still reach the histograms.
    FaultSpanRecorder rec(reg, /*max_spans=*/2, /*max_instants=*/2);
    for (std::uint64_t i = 0; i < 3; ++i)
        rec.recordSyncDemand(1000 * i, i, 0, 0, 100);
    EXPECT_EQ(rec.spans().size(), 2u);
    EXPECT_EQ(rec.spansDropped(), 1u);

    const HistogramId total = reg.histogram("fault.total_wall_ns");
    rec.aggregateRetained();
    EXPECT_EQ(reg.at(total).count(), 3u);
    // Idempotent: a second pass adds nothing.
    rec.aggregateRetained();
    EXPECT_EQ(reg.at(total).count(), 3u);

    // The span counter is eager and covers dropped spans too.
    EXPECT_EQ(reg.value(reg.counter("fault.spans")), 3u);

    // Instant retention drops are likewise counted.
    for (std::uint64_t i = 0; i < 3; ++i)
        rec.instant(InstantEvent::AllocStall, 100 * i, i, 0);
    EXPECT_EQ(rec.instants().size(), 2u);
    EXPECT_EQ(rec.instantsDropped(), 1u);
}

// ---- End-to-end: trial-level invariants -----------------------------

ExperimentConfig
smallMetricsCell(MetricsMode mode)
{
    ExperimentConfig cfg;
    cfg.workload = WorkloadKind::Tpch;
    cfg.policy = PolicyKind::MgLru;
    cfg.scale = ScalePreset::Small;
    cfg.metrics.mode = mode;
    return cfg;
}

TEST(MetricsIntegration, EverySpanReconcilesPhaseSumWithTotal)
{
    const TrialResult r =
        runTrial(smallMetricsCell(MetricsMode::Full), 7);
    ASSERT_FALSE(r.metrics.spans.empty());
    for (const FaultSpan &s : r.metrics.spans) {
        EXPECT_EQ(s.phaseSum(), s.total())
            << faultSpanKindName(s.kind) << " span at " << s.start;
        EXPECT_GE(s.end, s.start);
    }
    EXPECT_EQ(r.metrics.spansDropped, 0u);
    EXPECT_FALSE(r.metrics.instants.empty());
    EXPECT_FALSE(r.metrics.timeseries.empty());
}

TEST(MetricsIntegration, MetricsDoNotPerturbTheSimulation)
{
    const TrialResult off =
        runTrial(smallMetricsCell(MetricsMode::Off), 11);
    const TrialResult full =
        runTrial(smallMetricsCell(MetricsMode::Full), 11);
    // Observation must be pure: identical seed gives an identical
    // simulated machine whether or not anyone is watching.
    EXPECT_EQ(off.runtimeNs, full.runtimeNs);
    EXPECT_EQ(off.majorFaults, full.majorFaults);
    EXPECT_EQ(off.kernel.evictions, full.kernel.evictions);
}

TEST(MetricsIntegration, SnapshotsAreDeterministicAcrossRuns)
{
    const TrialResult a =
        runTrial(smallMetricsCell(MetricsMode::Full), 13);
    const TrialResult b =
        runTrial(smallMetricsCell(MetricsMode::Full), 13);
    // Byte-identical exports imply identical snapshots (names,
    // ordering, values, spans, and the sampled series).
    EXPECT_EQ(metricsJsonl(a.metrics), metricsJsonl(b.metrics));
    EXPECT_EQ(timeseriesCsv(a.metrics.timeseries),
              timeseriesCsv(b.metrics.timeseries));
    EXPECT_EQ(chromeTraceJson(a.metrics), chromeTraceJson(b.metrics));
}

TEST(MetricsIntegration, ChromeTraceParsesAndHasExpectedRecordKinds)
{
    const TrialResult r =
        runTrial(smallMetricsCell(MetricsMode::Full), 7);
    const std::string json = chromeTraceJson(r.metrics);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(jsonParse(json, doc, error)) << error;
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_FALSE(events->items.empty());
    std::size_t meta = 0, complete = 0, instants = 0, counters = 0;
    for (const JsonValue &ev : events->items) {
        ASSERT_TRUE(ev.isObject());
        const JsonValue *ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        ASSERT_TRUE(ph->isString());
        ASSERT_NE(ev.find("name"), nullptr);
        if (ph->str == "M")
            ++meta;
        else if (ph->str == "X")
            ++complete;
        else if (ph->str == "i")
            ++instants;
        else if (ph->str == "C")
            ++counters;
        if (ph->str == "X") {
            const JsonValue *dur = ev.find("dur");
            ASSERT_NE(dur, nullptr);
            EXPECT_GE(dur->number, 0.0);
        }
    }
    EXPECT_GT(meta, 0u) << "track-name metadata records";
    EXPECT_GT(complete, 0u) << "fault spans";
    EXPECT_GT(instants, 0u) << "readahead-hit / alloc-stall markers";
    EXPECT_GT(counters, 0u) << "sampler counter tracks";
}

TEST(MetricsIntegration, CountersModeSkipsTheSampler)
{
    const TrialResult r =
        runTrial(smallMetricsCell(MetricsMode::Counters), 7);
    EXPECT_FALSE(r.metrics.spans.empty());
    EXPECT_TRUE(r.metrics.timeseries.empty());
}

TEST(MetricsIntegration, OffModeProducesAnEmptySnapshot)
{
    const TrialResult r =
        runTrial(smallMetricsCell(MetricsMode::Off), 7);
    EXPECT_TRUE(r.metrics.empty());
}

TEST(MetricsMode, ParseRoundTrips)
{
    EXPECT_EQ(parseMetricsMode("off"), MetricsMode::Off);
    EXPECT_EQ(parseMetricsMode("counters"), MetricsMode::Counters);
    EXPECT_EQ(parseMetricsMode("full"), MetricsMode::Full);
    EXPECT_EQ(parseMetricsMode("on"), MetricsMode::Full);
    EXPECT_EQ(parseMetricsMode("garbage"), MetricsMode::Off);
    EXPECT_STREQ(metricsModeName(MetricsMode::Counters), "counters");
}

} // namespace
} // namespace pagesim
