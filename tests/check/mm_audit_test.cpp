/**
 * @file
 * Mutation tests for the cross-layer MM invariant auditor: seed one
 * corruption of each invariant class into a healthy machine and assert
 * the auditor detects it with a structured report naming the right
 * invariant and location. A clean machine must audit clean — these
 * tests are what make the "auditor on in CI" guarantee meaningful.
 */

#include <gtest/gtest.h>

#include "../kernel/kernel_test_util.hh"
#include "policy/mglru/mglru_policy.hh"

namespace pagesim
{
namespace
{

using Outcome = MemoryManager::AccessOutcome;

/**
 * Touch @p n pages (writes) so the machine builds up resident pages,
 * swapped pages, backing slots, and policy list state.
 */
void
populate(KernelHarness &h, std::uint64_t n)
{
    Vpn next = h.base();
    ProbeActor probe(h.sim, [&](ProbeActor &self) {
        CostSink sink;
        while (next < h.base() + n) {
            const Outcome o =
                h.mm->access(self, h.space, next, true, sink);
            if (o == Outcome::Blocked) {
                self.block();
                return;
            }
            ++next;
        }
        self.finish();
    });
    probe.start();
    ASSERT_TRUE(h.sim.runToCompletion(50000000));
}

/** First VPN in [base, base+n) whose PTE satisfies @p pred. */
template <typename Pred>
Vpn
findVpn(KernelHarness &h, std::uint64_t n, Pred pred)
{
    for (Vpn v = h.base(); v < h.base() + n; ++v)
        if (pred(h.space.table().at(v)))
            return v;
    return AuditViolation::kNoVpn;
}

TEST(MmAudit, CleanMachineAuditsClean)
{
    KernelHarness h(64, 256);
    populate(h, 96); // overcommit: forces reclaim and swap traffic
    const AuditReport rep = h.auditor->audit();
    EXPECT_TRUE(rep.clean()) << rep.toString();
    // The walk actually covered the machine.
    EXPECT_GT(rep.ptesWalked, 0u);
    EXPECT_EQ(rep.framesWalked, h.frames.totalFrames());
    EXPECT_GT(rep.slotsChecked, 0u);
    EXPECT_GT(rep.listsWalked, 0u);
    EXPECT_EQ(rep.auditSeq, h.auditor->auditsRun());
}

TEST(MmAudit, DetectsRmapBackPointerCorruption)
{
    KernelHarness h(64, 256);
    populate(h, 96);
    const Vpn v = findVpn(h, 96, [](PteView p) {
        return p.present() && !p.slow();
    });
    ASSERT_NE(v, AuditViolation::kNoVpn);
    const Pfn pfn = h.space.table().at(v).pfn();
    h.frames.info(pfn).vpn += 1; // break the reverse map

    const AuditReport rep = h.auditor->audit();
    ASSERT_FALSE(rep.clean());
    EXPECT_TRUE(rep.hasInvariant("present-rmap-mismatch"))
        << rep.toString();
    EXPECT_GE(rep.countFor(AuditSubsystem::Pte), 1u);
    // The report pinpoints the corrupted mapping.
    bool located = false;
    for (const AuditViolation &viol : rep.violations) {
        if (viol.invariant == "present-rmap-mismatch") {
            EXPECT_EQ(viol.spaceId, h.space.id());
            EXPECT_EQ(viol.vpn, v);
            EXPECT_EQ(viol.pfn, pfn);
            located = true;
        }
    }
    EXPECT_TRUE(located);

    h.frames.info(pfn).vpn -= 1; // heal for teardown
}

TEST(MmAudit, DetectsSharedSwapSlot)
{
    KernelHarness h(64, 256);
    populate(h, 96);
    const Vpn v1 = findVpn(h, 96, [](PteView p) {
        return p.swapped() && !p.inIo();
    });
    ASSERT_NE(v1, AuditViolation::kNoVpn);
    const Vpn v2 = findVpn(h, 96, [&](PteView p) {
        return p.swapped() && !p.inIo() &&
               p.swapSlot() != h.space.table().at(v1).swapSlot();
    });
    ASSERT_NE(v2, AuditViolation::kNoVpn);
    // Point the second page at the first page's slot: two PTEs now
    // share one slot, and the second page's own slot leaks.
    h.space.table().at(v2).unmapToSwap(
        h.space.table().at(v1).swapSlot(), 0);

    const AuditReport rep = h.auditor->audit();
    ASSERT_FALSE(rep.clean());
    EXPECT_TRUE(rep.hasInvariant("slot-shared")) << rep.toString();
    EXPECT_TRUE(rep.hasInvariant("slot-leak")) << rep.toString();
    EXPECT_GE(rep.countFor(AuditSubsystem::Swap), 2u);
}

TEST(MmAudit, DetectsUnallocatedSlotReference)
{
    KernelHarness h(64, 256);
    populate(h, 96);
    const Vpn v = findVpn(h, 96, [](PteView p) {
        return p.swapped() && !p.inIo();
    });
    ASSERT_NE(v, AuditViolation::kNoVpn);
    h.space.table().at(v).unmapToSwap(h.swap->slotHighWater() + 5, 0);

    const AuditReport rep = h.auditor->audit();
    ASSERT_FALSE(rep.clean());
    EXPECT_TRUE(rep.hasInvariant("swapped-slot-not-allocated"))
        << rep.toString();
    EXPECT_TRUE(rep.hasInvariant("referenced-slot-not-allocated"))
        << rep.toString();
}

TEST(MmAudit, DetectsSpuriousInIoFlag)
{
    KernelHarness h(64, 256);
    populate(h, 96);
    const Vpn v = findVpn(h, 96, [](PteView p) {
        return p.swapped() && !p.inIo();
    });
    ASSERT_NE(v, AuditViolation::kNoVpn);
    h.space.table().at(v).setFlag(Pte::InIo);

    const AuditReport rep = h.auditor->audit();
    ASSERT_FALSE(rep.clean());
    // No in-flight op backs this PTE: the global reconciliation and
    // the per-page frame-claim check both fire.
    EXPECT_TRUE(rep.hasInvariant("inio-flight-mismatch"))
        << rep.toString();
    EXPECT_TRUE(rep.hasInvariant("inio-frame-claims"))
        << rep.toString();
    EXPECT_GE(rep.countFor(AuditSubsystem::Waiters), 2u);

    h.space.table().at(v).clearFlag(Pte::InIo);
}

TEST(MmAudit, DetectsListMembershipCorruption)
{
    KernelHarness h(64, 256);
    populate(h, 96);
    const Vpn v = findVpn(h, 96, [](PteView p) {
        return p.present() && !p.slow();
    });
    ASSERT_NE(v, AuditViolation::kNoVpn);
    const Pfn pfn = h.space.table().at(v).pfn();
    const auto pi = h.frames.info(pfn);
    ASSERT_NE(pi.listId, 0); // resident pages are policy-tracked
    const std::uint8_t saved = pi.listId;
    // lint:pageinfo-direct-ok(deliberate desync: frame claims to be on no list, links say otherwise)
    pi.listId = 0;

    const AuditReport rep = h.auditor->audit();
    ASSERT_FALSE(rep.clean());
    EXPECT_TRUE(rep.hasInvariant("list-links-corrupt"))
        << rep.toString();

    // lint:pageinfo-direct-ok(undo the deliberate corruption above)
    pi.listId = saved;
}

TEST(MmAudit, DetectsGenerationOutOfRange)
{
    KernelHarness h(64, 256, /*zram=*/false, PolicyKind::MgLru);
    populate(h, 96);
    auto *mg = dynamic_cast<MgLruPolicy *>(h.policy.get());
    ASSERT_NE(mg, nullptr);
    const Vpn v = findVpn(h, 96, [](PteView p) {
        return p.present() && !p.slow();
    });
    ASSERT_NE(v, AuditViolation::kNoVpn);
    const auto pi = h.frames.info(h.space.table().at(v).pfn());
    const std::uint64_t saved = pi.gen;
    pi.gen = mg->maxSeq() + 10;

    const AuditReport rep = h.auditor->audit();
    ASSERT_FALSE(rep.clean());
    EXPECT_TRUE(rep.hasInvariant("gen-out-of-range")) << rep.toString();
    EXPECT_GE(rep.countFor(AuditSubsystem::Policy), 1u);

    pi.gen = saved;
}

TEST(MmAudit, DetectsRegionCounterCorruption)
{
    KernelHarness h(64, 256);
    populate(h, 32); // no reclaim needed
    const Vpn v = findVpn(h, 32, [](PteView p) {
        return p.present();
    });
    ASSERT_NE(v, AuditViolation::kNoVpn);
    // Clear the Present flag behind the table's back: the recount no
    // longer matches the RegionInfo counter.
    h.space.table().at(v).clearFlag(Pte::Present);

    const AuditReport rep = h.auditor->audit();
    ASSERT_FALSE(rep.clean());
    EXPECT_TRUE(rep.hasInvariant("region-counter-mismatch"))
        << rep.toString();

    h.space.table().at(v).setFlag(Pte::Present);
}

TEST(MmAudit, DetectsPresentBitmapDesync)
{
    KernelHarness h(64, 256);
    populate(h, 32);
    const Vpn v = findVpn(h, 32, [](PteView p) {
        return p.present();
    });
    ASSERT_NE(v, AuditViolation::kNoVpn);
    // Flag cleared behind the table's back: the present bitmap word
    // still has the bit, and the O(1) running total still counts it.
    h.space.table().at(v).clearFlag(Pte::Present);

    const AuditReport rep = h.auditor->audit();
    ASSERT_FALSE(rep.clean());
    EXPECT_TRUE(rep.hasInvariant("present-bitmap-mismatch"))
        << rep.toString();
    EXPECT_TRUE(rep.hasInvariant("total-present-mismatch"))
        << rep.toString();

    h.space.table().at(v).setFlag(Pte::Present);
}

TEST(MmAudit, DetectsAccessedBitmapDesync)
{
    KernelHarness h(64, 256);
    populate(h, 32);
    const Vpn v = findVpn(h, 32, [](PteView p) {
        return p.present();
    });
    ASSERT_NE(v, AuditViolation::kNoVpn);
    h.space.table().setAccessed(v);
    // A scan reading the accessed word would still see this page as
    // young after the flag was dropped directly on the PTE.
    h.space.table().at(v).clearFlag(Pte::Accessed);

    const AuditReport rep = h.auditor->audit();
    ASSERT_FALSE(rep.clean());
    EXPECT_TRUE(rep.hasInvariant("accessed-bitmap-mismatch"))
        << rep.toString();

    h.space.table().at(v).setFlag(Pte::Accessed);
}

TEST(MmAudit, DetectsMappedBitmapDesync)
{
    KernelHarness h(64, 256);
    populate(h, 32);
    const Vpn v = findVpn(h, 32, [](PteView p) {
        return p.mapped() && p.present();
    });
    ASSERT_NE(v, AuditViolation::kNoVpn);
    h.space.table().at(v).clearFlag(Pte::Mapped);

    const AuditReport rep = h.auditor->audit();
    ASSERT_FALSE(rep.clean());
    EXPECT_TRUE(rep.hasInvariant("mapped-bitmap-mismatch"))
        << rep.toString();
    EXPECT_TRUE(rep.hasInvariant("total-mapped-mismatch"))
        << rep.toString();

    h.space.table().at(v).setFlag(Pte::Mapped);
}

TEST(MmAudit, DetectsSummaryBitmapDesync)
{
    KernelHarness h(64, 256);
    populate(h, 32); // only the first region gains present pages
    // A mapped-but-untouched VPN two regions past the populated span:
    // its region's summary bit is clear, so the aging walk would skip
    // the region wholesale.
    const Vpn v = h.base() + 2 * kPtesPerRegion;
    ASSERT_TRUE(h.space.table().at(v).mapped());
    ASSERT_FALSE(h.space.table().at(v).present());
    ASSERT_FALSE(h.space.table().anyPresent(v / kPtesPerRegion));
    // Residency granted behind the table's back: the summary bitmap,
    // per-word bitmap, region counter, and running total all go stale
    // at once.
    h.space.table().at(v).mapFrame(0);

    const AuditReport rep = h.auditor->audit();
    ASSERT_FALSE(rep.clean());
    EXPECT_TRUE(rep.hasInvariant("present-summary-mismatch"))
        << rep.toString();
    EXPECT_TRUE(rep.hasInvariant("present-bitmap-mismatch"))
        << rep.toString();
    EXPECT_TRUE(rep.hasInvariant("region-counter-mismatch"))
        << rep.toString();
    EXPECT_TRUE(rep.hasInvariant("total-present-mismatch"))
        << rep.toString();

    h.space.table().at(v).unmapDiscard(0);
}

TEST(MmAudit, DetectsFrameLeak)
{
    KernelHarness h(64, 256);
    populate(h, 96);
    const Vpn v = findVpn(h, 96, [](PteView p) {
        return p.present() && !p.slow();
    });
    ASSERT_NE(v, AuditViolation::kNoVpn);
    const auto pi = h.frames.info(h.space.table().at(v).pfn());
    AddressSpace *saved = pi.space;
    pi.space = nullptr; // "free" frame that is on no free list

    const AuditReport rep = h.auditor->audit();
    ASSERT_FALSE(rep.clean());
    EXPECT_TRUE(rep.hasInvariant("free-list-membership"))
        << rep.toString();
    EXPECT_GE(rep.countFor(AuditSubsystem::Frame), 1u);

    pi.space = saved;
}

TEST(MmAudit, DetectsSlotLeak)
{
    KernelHarness h(64, 256);
    populate(h, 96);
    // Allocate a slot nobody references.
    ASSERT_NE(h.swap->allocate(), kInvalidSlot);

    const AuditReport rep = h.auditor->audit();
    ASSERT_FALSE(rep.clean());
    EXPECT_TRUE(rep.hasInvariant("slot-leak")) << rep.toString();
}

TEST(MmAudit, DetectsZramTagMismatch)
{
    KernelHarness h(64, 256, /*zram=*/true);
    populate(h, 96);
    const Vpn v = findVpn(h, 96, [](PteView p) {
        return p.swapped() && !p.inIo();
    });
    ASSERT_NE(v, AuditViolation::kNoVpn);
    const SwapSlot slot = h.space.table().at(v).swapSlot();
    // Stale-contents bug: the slot records some other page's bytes.
    h.swap->recordContents(slot, 0xdeadbeefull);

    const AuditReport rep = h.auditor->audit();
    ASSERT_FALSE(rep.clean());
    EXPECT_TRUE(rep.hasInvariant("swapped-slot-tag-mismatch"))
        << rep.toString();
    EXPECT_GE(rep.countFor(AuditSubsystem::Zram), 1u);

    h.swap->recordContents(slot, MemoryManager::contentTag(h.space, v));
}

TEST(MmAudit, DetectsZramPoolCorruption)
{
    KernelHarness h(64, 256, /*zram=*/true);
    populate(h, 96);
    const Vpn v = findVpn(h, 96, [](PteView p) {
        return p.swapped() && !p.inIo();
    });
    ASSERT_NE(v, AuditViolation::kNoVpn);
    const SwapSlot slot = h.space.table().at(v).swapSlot();
    auto *zram = dynamic_cast<ZramSwapDevice *>(h.device.get());
    ASSERT_NE(zram, nullptr);
    zram->dropSlot(slot); // allocated slot loses its contents

    const AuditReport rep = h.auditor->audit();
    ASSERT_FALSE(rep.clean());
    EXPECT_TRUE(rep.hasInvariant("swapped-slot-untagged"))
        << rep.toString();

    h.swap->recordContents(slot, MemoryManager::contentTag(h.space, v));
}

TEST(MmAudit, DetectsSlowTierCorruption)
{
    // A machine with a slow tier, demoted pages on the FIFO.
    KernelHarness h(32, 512);
    MmConfig cfg = h.config;
    cfg.tier.slowFrames = 16;
    cfg.reclaimBatch = 8;
    cfg.directReclaimBelow = 0;
    h.config = cfg;
    h.mm = std::make_unique<MemoryManager>(h.sim, h.frames, *h.swap,
                                           *h.policy, cfg);
    h.auditor = std::make_unique<MmAuditor>(
        *h.mm, std::vector<const AddressSpace *>{&h.space});
    populate(h, 24);
    CostSink sink;
    h.mm->reclaimBatch(sink, true);
    h.sim.events().run();
    ASSERT_GT(h.mm->tierStats().demotions, 0u);
    ASSERT_TRUE(h.auditor->audit().clean());

    const Vpn v = findVpn(h, 24, [](PteView p) {
        return p.present() && p.slow();
    });
    ASSERT_NE(v, AuditViolation::kNoVpn);
    // Lost-flag bug: the page is in the slow tier but its PTE no
    // longer says so.
    h.space.table().at(v).clearFlag(Pte::Slow);

    const AuditReport rep = h.auditor->audit();
    ASSERT_FALSE(rep.clean());
    // The PTE now reads as a fast-tier mapping of a bogus frame, and
    // the slow frame has no Slow PTE pointing at it.
    EXPECT_GE(rep.countFor(AuditSubsystem::SlowTier), 1u);
    EXPECT_TRUE(rep.hasInvariant("slow-frame-rmap-mismatch") ||
                rep.hasInvariant("slow-pte-frame-count-mismatch"))
        << rep.toString();

    h.space.table().at(v).setFlag(Pte::Slow);
}

TEST(MmAudit, PeriodicHookFiresEveryBatchAndStaysClean)
{
    KernelHarness h(64, 256); // harness installs auditEvery=1 hard-fail
    populate(h, 128);         // heavy overcommit: many reclaim batches
    EXPECT_GT(h.mm->reclaimBatches(), 0u);
    // Hard-fail mode: reaching this line means every periodic audit
    // during the run was clean.
    EXPECT_GE(h.auditor->auditsRun(), h.mm->reclaimBatches());
    EXPECT_EQ(h.auditor->violationsSeen(), 0u);
}

/** Two-tenant machine with both tenants' pages resident. */
struct TwoTenantFixture
{
    MultiKernelHarness h;

    TwoTenantFixture()
        : h([] {
              MultiKernelHarness::TenantSetup a;
              a.config.name = "a";
              MultiKernelHarness::TenantSetup b;
              b.config.name = "b";
              return std::vector<MultiKernelHarness::TenantSetup>{a, b};
          }(),
            /*nframes=*/256)
    {
        for (std::size_t t = 0; t < 2; ++t) {
            Vpn next = h.base(t);
            ProbeActor probe(h.sim, [&](ProbeActor &self) {
                CostSink sink;
                while (next < h.base(t) + 32) {
                    const Outcome o = h.mm->access(
                        self, *h.spaces[t], next, true, sink);
                    if (o == Outcome::Blocked) {
                        self.block();
                        return;
                    }
                    ++next;
                }
                self.finish();
            });
            probe.start();
            EXPECT_TRUE(h.sim.runToCompletion(50000000));
        }
    }

    /** A resident fast-tier frame belonging to tenant @p t. */
    Pfn
    residentFrame(std::size_t t) const
    {
        for (Vpn v = h.base(t); v < h.base(t) + 32; ++v) {
            const PteView p = h.spaces[t]->table().at(v);
            if (p.present() && !p.slow())
                return p.pfn();
        }
        return kInvalidPfn;
    }
};

TEST(MmAudit, DetectsFrameChargedToWrongMemcg)
{
    TwoTenantFixture f;
    const Pfn pfn = f.residentFrame(0);
    ASSERT_NE(pfn, kInvalidPfn);
    // Repoint tenant a's frame at tenant b's group: the lane no longer
    // matches the owning space, and both groups' usage counters now
    // disagree with the lane recount.
    f.h.frames.info(pfn).memcg = 1;

    const AuditReport rep = f.h.auditor->audit();
    ASSERT_FALSE(rep.clean());
    EXPECT_TRUE(rep.hasInvariant("frame-memcg-mismatch"))
        << rep.toString();
    EXPECT_TRUE(rep.hasInvariant("memcg-usage-mismatch"))
        << rep.toString();
    EXPECT_GE(rep.countFor(AuditSubsystem::Memcg), 3u)
        << "mismatched frame plus one usage recount per group";

    f.h.frames.info(pfn).memcg = 0; // heal for teardown
}

TEST(MmAudit, DetectsAsymmetricCharge)
{
    TwoTenantFixture f;
    const Pfn pfn = f.residentFrame(1);
    ASSERT_NE(pfn, kInvalidPfn);
    // Clear the lane without moving usage() — the half of a charge a
    // buggy free path would leave behind.
    f.h.frames.info(pfn).memcg = kNoMemcg;

    const AuditReport rep = f.h.auditor->audit();
    ASSERT_FALSE(rep.clean());
    EXPECT_TRUE(rep.hasInvariant("frame-uncharged")) << rep.toString();
    EXPECT_TRUE(rep.hasInvariant("memcg-usage-mismatch"))
        << rep.toString();

    f.h.frames.info(pfn).memcg = 1; // heal for teardown
}

TEST(MmAudit, ViolationRenderingIsStructured)
{
    AuditViolation v;
    v.subsystem = AuditSubsystem::Swap;
    v.invariant = "slot-shared";
    v.spaceId = 3;
    v.vpn = 42;
    v.expected = "one owner";
    v.actual = "two owners";
    const std::string s = v.toString();
    EXPECT_NE(s.find("[Swap]"), std::string::npos);
    EXPECT_NE(s.find("slot-shared"), std::string::npos);
    EXPECT_NE(s.find("space=3"), std::string::npos);
    EXPECT_NE(s.find("vpn=42"), std::string::npos);
    EXPECT_NE(s.find("one owner"), std::string::npos);

    AuditReport rep;
    rep.auditSeq = 7;
    rep.violations.push_back(v);
    rep.violations.push_back(v);
    const std::string r = rep.toString(/*max_lines=*/1);
    EXPECT_NE(r.find("mm_audit #7"), std::string::npos);
    EXPECT_NE(r.find("2 violation(s)"), std::string::npos);
    EXPECT_NE(r.find("(1 more)"), std::string::npos);
}

} // namespace
} // namespace pagesim
