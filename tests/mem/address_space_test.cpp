#include <gtest/gtest.h>

#include "mem/address_space.hh"

namespace pagesim
{
namespace
{

TEST(AddressSpace, MapCreatesRegionAlignedVma)
{
    AddressSpace space(0);
    const Vpn base = space.map("heap", 100);
    EXPECT_EQ(base % kPtesPerRegion, 0u);
    EXPECT_EQ(space.vmas().size(), 1u);
    EXPECT_EQ(space.mappedPages(), 100u);
    for (Vpn v = base; v < base + 100; ++v)
        EXPECT_TRUE(space.table().at(v).mapped());
}

TEST(AddressSpace, VmasDoNotOverlapAndLeaveGaps)
{
    AddressSpace space(0);
    const Vpn a = space.map("a", 10);
    const Vpn b = space.map("b", 10);
    EXPECT_GT(b, a + 10) << "gap pages between VMAs";
    // The gap is unmapped.
    EXPECT_FALSE(space.table().at(a + 10).mapped());
}

TEST(AddressSpace, FindVma)
{
    AddressSpace space(0);
    const Vpn a = space.map("a", 5);
    const Vpn b = space.map("b", 5, true);
    const Vma *va = space.findVma(a + 2);
    ASSERT_NE(va, nullptr);
    EXPECT_EQ(va->name, "a");
    const Vma *vb = space.findVma(b);
    ASSERT_NE(vb, nullptr);
    EXPECT_TRUE(vb->file);
    EXPECT_EQ(space.findVma(a + 7), nullptr);
}

TEST(AddressSpace, FileVmaSetsPteFileFlag)
{
    AddressSpace space(0);
    const Vpn base = space.map("cache", 4, true);
    EXPECT_TRUE(space.table().at(base).file());
    const Vpn anon = space.map("anon", 4, false);
    EXPECT_FALSE(space.table().at(anon).file());
}

TEST(AddressSpace, MappedPagesSumsVmas)
{
    AddressSpace space(0);
    space.map("a", 3);
    space.map("b", 7);
    EXPECT_EQ(space.mappedPages(), 10u);
    EXPECT_EQ(space.table().totalMapped(), 10u);
}

} // namespace
} // namespace pagesim
