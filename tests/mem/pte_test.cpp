#include <gtest/gtest.h>

#include "mem/pte.hh"

namespace pagesim
{
namespace
{

TEST(Pte, StartsEmpty)
{
    Pte pte;
    EXPECT_FALSE(pte.present());
    EXPECT_FALSE(pte.accessed());
    EXPECT_FALSE(pte.dirty());
    EXPECT_FALSE(pte.swapped());
    EXPECT_FALSE(pte.mapped());
    EXPECT_EQ(pte.shadow(), 0u);
}

TEST(Pte, MapFrameSetsPresent)
{
    Pte pte;
    pte.mapFrame(42);
    EXPECT_TRUE(pte.present());
    EXPECT_FALSE(pte.swapped());
    EXPECT_EQ(pte.pfn(), 42u);
}

TEST(Pte, TestAndClearAccessed)
{
    Pte pte;
    pte.setFlag(Pte::Accessed);
    EXPECT_TRUE(pte.testAndClearAccessed());
    EXPECT_FALSE(pte.accessed());
    EXPECT_FALSE(pte.testAndClearAccessed());
}

TEST(Pte, UnmapToSwapRoundTrip)
{
    Pte pte;
    pte.mapFrame(7);
    pte.setFlag(Pte::Accessed);
    pte.setFlag(Pte::Dirty);
    pte.unmapToSwap(123, 0xBEEF);
    EXPECT_FALSE(pte.present());
    EXPECT_TRUE(pte.swapped());
    EXPECT_FALSE(pte.accessed()) << "unmap clears architectural bits";
    EXPECT_FALSE(pte.dirty());
    EXPECT_EQ(pte.swapSlot(), 123u);
    EXPECT_EQ(pte.shadow(), 0xBEEFu);

    pte.mapFrame(9);
    EXPECT_TRUE(pte.present());
    EXPECT_FALSE(pte.swapped());
    EXPECT_EQ(pte.pfn(), 9u);
    // Shadow survives until explicitly cleared (refault detection).
    EXPECT_EQ(pte.shadow(), 0xBEEFu);
    pte.clearShadow();
    EXPECT_EQ(pte.shadow(), 0u);
}

TEST(Pte, UnmapDiscardClearsSwap)
{
    Pte pte;
    pte.mapFrame(7);
    pte.unmapDiscard(0x11);
    EXPECT_FALSE(pte.present());
    EXPECT_FALSE(pte.swapped());
    EXPECT_EQ(pte.shadow(), 0x11u);
}

TEST(Pte, MapFrameClearsInIo)
{
    Pte pte;
    pte.unmapToSwap(5, 1);
    pte.setFlag(Pte::InIo);
    EXPECT_TRUE(pte.inIo());
    pte.mapFrame(3);
    EXPECT_FALSE(pte.inIo());
}

TEST(Pte, FileAndMappedFlagsIndependent)
{
    Pte pte;
    pte.setFlag(Pte::Mapped);
    pte.setFlag(Pte::File);
    pte.mapFrame(1);
    pte.unmapToSwap(2, 3);
    EXPECT_TRUE(pte.mapped());
    EXPECT_TRUE(pte.file());
}

} // namespace
} // namespace pagesim
