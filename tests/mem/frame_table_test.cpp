#include <gtest/gtest.h>

#include "mem/address_space.hh"
#include "mem/frame_table.hh"

namespace pagesim
{
namespace
{

TEST(FrameTable, AllocateUntilExhausted)
{
    FrameTable ft(4);
    AddressSpace space(0);
    EXPECT_EQ(ft.freeFrames(), 4u);
    for (int i = 0; i < 4; ++i) {
        const Pfn pfn = ft.allocate(&space, i, false);
        ASSERT_NE(pfn, kInvalidPfn);
    }
    EXPECT_EQ(ft.allocate(&space, 99, false), kInvalidPfn);
    EXPECT_EQ(ft.freeFrames(), 0u);
    EXPECT_EQ(ft.usedFrames(), 4u);
}

TEST(FrameTable, AllocationIsLowPfnFirst)
{
    FrameTable ft(8);
    AddressSpace space(0);
    EXPECT_EQ(ft.allocate(&space, 0, false), 0u);
    EXPECT_EQ(ft.allocate(&space, 1, false), 1u);
}

TEST(FrameTable, ReleaseRecycles)
{
    FrameTable ft(2);
    AddressSpace space(0);
    const Pfn a = ft.allocate(&space, 0, false);
    ft.release(a);
    EXPECT_EQ(ft.freeFrames(), 2u);
    const Pfn b = ft.allocate(&space, 1, false);
    EXPECT_EQ(b, a) << "LIFO recycling";
}

TEST(FrameTable, InfoResetOnAllocate)
{
    FrameTable ft(1);
    AddressSpace space(0);
    Pfn pfn = ft.allocate(&space, 7, true);
    const auto pi = ft.info(pfn);
    pi.gen = 99;
    pi.tier = 3;
    pi.refs = 12;
    pi.backing = 5;
    // lint:pageinfo-direct-ok(reset test dirties every lane incl. listId; the frame is on no list)
    pi.listId = 0;
    ft.release(pfn);
    pfn = ft.allocate(&space, 8, false);
    const auto fresh = ft.info(pfn);
    EXPECT_EQ(fresh.vpn, 8u);
    EXPECT_FALSE(fresh.file);
    EXPECT_EQ(fresh.gen, 0u);
    EXPECT_EQ(fresh.tier, 0);
    EXPECT_EQ(fresh.refs, 0u);
    EXPECT_EQ(fresh.backing, kInvalidSlot);
}

TEST(FrameList, PushPopOrder)
{
    FrameTable ft(8);
    AddressSpace space(0);
    FrameList list(ft, 1);
    for (Vpn v = 0; v < 4; ++v)
        list.pushFront(ft.allocate(&space, v, false));
    EXPECT_EQ(list.size(), 4u);
    // pushFront order 0,1,2,3 -> tail is 0.
    EXPECT_EQ(ft.info(list.tail()).vpn, 0u);
    EXPECT_EQ(ft.info(list.head()).vpn, 3u);
    const Pfn popped = list.popBack();
    EXPECT_EQ(ft.info(popped).vpn, 0u);
    EXPECT_EQ(list.size(), 3u);
    EXPECT_EQ(ft.info(popped).listId, 0);
}

TEST(FrameList, RemoveMiddle)
{
    FrameTable ft(8);
    AddressSpace space(0);
    FrameList list(ft, 1);
    Pfn pfns[3];
    for (int i = 0; i < 3; ++i) {
        pfns[i] = ft.allocate(&space, i, false);
        list.pushBack(pfns[i]);
    }
    list.remove(pfns[1]);
    EXPECT_EQ(list.size(), 2u);
    EXPECT_EQ(list.popFront(), pfns[0]);
    EXPECT_EQ(list.popFront(), pfns[2]);
    EXPECT_TRUE(list.empty());
    EXPECT_EQ(list.head(), kInvalidPfn);
    EXPECT_EQ(list.tail(), kInvalidPfn);
}

TEST(FrameList, MoveBetweenLists)
{
    FrameTable ft(4);
    AddressSpace space(0);
    FrameList a(ft, 1), b(ft, 2);
    const Pfn pfn = ft.allocate(&space, 0, false);
    a.pushFront(pfn);
    EXPECT_TRUE(a.contains(pfn));
    EXPECT_FALSE(b.contains(pfn));
    a.remove(pfn);
    b.pushBack(pfn);
    EXPECT_TRUE(b.contains(pfn));
    EXPECT_EQ(a.size(), 0u);
    EXPECT_EQ(b.size(), 1u);
}

TEST(FrameList, PopOnEmptyReturnsInvalid)
{
    FrameTable ft(1);
    FrameList list(ft, 1);
    EXPECT_EQ(list.popBack(), kInvalidPfn);
    EXPECT_EQ(list.popFront(), kInvalidPfn);
}

TEST(FrameList, SingleElementBothEnds)
{
    FrameTable ft(1);
    AddressSpace space(0);
    FrameList list(ft, 1);
    const Pfn pfn = ft.allocate(&space, 0, false);
    list.pushBack(pfn);
    EXPECT_EQ(list.head(), pfn);
    EXPECT_EQ(list.tail(), pfn);
    EXPECT_EQ(list.popFront(), pfn);
    EXPECT_TRUE(list.empty());
}

} // namespace
} // namespace pagesim
