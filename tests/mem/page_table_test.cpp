#include <gtest/gtest.h>

#include "mem/page_table.hh"

namespace pagesim
{
namespace
{

TEST(PageTable, GrowsToRegionGranularity)
{
    PageTable t;
    t.growTo(1);
    EXPECT_EQ(t.numRegions(), 1u);
    EXPECT_EQ(t.span(), kPtesPerRegion);
    t.growTo(kPtesPerRegion + 1);
    EXPECT_EQ(t.numRegions(), 2u);
}

TEST(PageTable, GrowNeverShrinks)
{
    PageTable t;
    t.growTo(10 * kPtesPerRegion);
    const auto regions = t.numRegions();
    t.growTo(1);
    EXPECT_EQ(t.numRegions(), regions);
}

TEST(PageTable, RegionCountersTrackMappedAndPresent)
{
    PageTable t;
    t.growTo(2 * kPtesPerRegion);
    t.markMapped(0, false);
    t.markMapped(1, false);
    t.markMapped(kPtesPerRegion, true);
    EXPECT_EQ(t.region(0).mapped, 2u);
    EXPECT_EQ(t.region(1).mapped, 1u);
    EXPECT_TRUE(t.at(kPtesPerRegion).file());

    t.mapFrame(0, 5);
    EXPECT_EQ(t.region(0).present, 1u);
    t.unmapToSwap(0, 1, 0);
    EXPECT_EQ(t.region(0).present, 0u);
}

TEST(PageTable, Totals)
{
    PageTable t;
    t.growTo(3 * kPtesPerRegion);
    for (Vpn v = 0; v < 5; ++v)
        t.markMapped(v, false);
    t.mapFrame(0, 10);
    t.mapFrame(1, 11);
    EXPECT_EQ(t.totalMapped(), 5u);
    EXPECT_EQ(t.totalPresent(), 2u);
    // Totals are running counts, not re-sums; they must survive a
    // present -> present remap (tier migration) without drift.
    t.mapFrame(1, 12);
    EXPECT_EQ(t.totalPresent(), 2u);
    t.unmapDiscard(0, 0);
    EXPECT_EQ(t.totalPresent(), 1u);
    EXPECT_EQ(t.totalMapped(), 5u);
}

TEST(PageTable, BitmapsMirrorTrackedMutations)
{
    PageTable t;
    t.growTo(2 * kPtesPerRegion);
    t.markMapped(3, false);
    t.markMapped(kPtesPerRegion + 1, false);
    EXPECT_EQ(t.mappedWord(0, 0) & (1ull << 3), 1ull << 3);
    EXPECT_EQ(t.mappedWord(1, 0) & 0x2u, 0x2u);

    t.mapFrame(3, 7);
    EXPECT_EQ(t.presentWord(0, 0), 1ull << 3);
    EXPECT_EQ(t.accessedWord(0, 0), 0u);
    t.setAccessed(3);
    EXPECT_EQ(t.accessedWord(0, 0), 1ull << 3);
    EXPECT_TRUE(t.at(3).accessed());

    EXPECT_TRUE(t.testAndClearAccessed(3));
    EXPECT_EQ(t.accessedWord(0, 0), 0u);
    EXPECT_FALSE(t.at(3).accessed());
    EXPECT_FALSE(t.testAndClearAccessed(3));

    t.setAccessed(3);
    t.unmapToSwap(3, 9, 0);
    EXPECT_EQ(t.presentWord(0, 0), 0u);
    EXPECT_EQ(t.accessedWord(0, 0), 0u); // unmap clears Accessed too
}

TEST(PageTable, SummaryBitmapAndNextPresentRegion)
{
    PageTable t;
    const std::uint64_t nr = 130; // spans three summary words
    t.growTo(nr * kPtesPerRegion);
    EXPECT_EQ(t.nextPresentRegion(0), nr);

    t.markMapped(regionBase(2), false);
    t.markMapped(regionBase(129), false);
    t.mapFrame(regionBase(2), 1);
    t.mapFrame(regionBase(129), 2);
    EXPECT_TRUE(t.anyPresent(2));
    EXPECT_FALSE(t.anyPresent(3));
    EXPECT_EQ(t.nextPresentRegion(0), 2u);
    EXPECT_EQ(t.nextPresentRegion(2), 2u);
    EXPECT_EQ(t.nextPresentRegion(3), 129u);
    EXPECT_EQ(t.nextPresentRegion(130), nr);

    t.unmapDiscard(regionBase(2), 0);
    EXPECT_FALSE(t.anyPresent(2));
    EXPECT_EQ(t.nextPresentRegion(0), 129u);
    // Region 129 keeps its summary bit while any PTE stays present.
    t.markMapped(regionBase(129) + 1, false);
    t.mapFrame(regionBase(129) + 1, 3);
    t.unmapDiscard(regionBase(129), 0);
    EXPECT_TRUE(t.anyPresent(129));
    t.unmapDiscard(regionBase(129) + 1, 0);
    EXPECT_EQ(t.nextPresentRegion(0), nr);
}

TEST(PageTable, ClearAccessedBitsIsBitmapSideOnly)
{
    PageTable t;
    t.growTo(kPtesPerRegion);
    t.markMapped(0, false);
    t.markMapped(1, false);
    t.mapFrame(0, 1);
    t.mapFrame(1, 2);
    t.setAccessed(0);
    t.setAccessed(1);
    t.clearAccessedBits(0, 0, 0x1u);
    EXPECT_EQ(t.accessedWord(0, 0), 0x2u);
    // The PTE flag fixup is the caller's job (word-store + fixup).
    EXPECT_TRUE(t.at(0).accessed());
}

TEST(PageTable, RegionOfMath)
{
    EXPECT_EQ(regionOf(0), 0u);
    EXPECT_EQ(regionOf(kPtesPerRegion - 1), 0u);
    EXPECT_EQ(regionOf(kPtesPerRegion), 1u);
    EXPECT_EQ(regionBase(3), 3 * kPtesPerRegion);
}

} // namespace
} // namespace pagesim
