#include <gtest/gtest.h>

#include "mem/page_table.hh"

namespace pagesim
{
namespace
{

TEST(PageTable, GrowsToRegionGranularity)
{
    PageTable t;
    t.growTo(1);
    EXPECT_EQ(t.numRegions(), 1u);
    EXPECT_EQ(t.span(), kPtesPerRegion);
    t.growTo(kPtesPerRegion + 1);
    EXPECT_EQ(t.numRegions(), 2u);
}

TEST(PageTable, GrowNeverShrinks)
{
    PageTable t;
    t.growTo(10 * kPtesPerRegion);
    const auto regions = t.numRegions();
    t.growTo(1);
    EXPECT_EQ(t.numRegions(), regions);
}

TEST(PageTable, RegionCountersTrackMappedAndPresent)
{
    PageTable t;
    t.growTo(2 * kPtesPerRegion);
    t.markMapped(0, false);
    t.markMapped(1, false);
    t.markMapped(kPtesPerRegion, true);
    EXPECT_EQ(t.region(0).mapped, 2u);
    EXPECT_EQ(t.region(1).mapped, 1u);
    EXPECT_TRUE(t.at(kPtesPerRegion).file());

    t.at(0).mapFrame(5);
    t.notePresent(0);
    EXPECT_EQ(t.region(0).present, 1u);
    t.noteNotPresent(0);
    EXPECT_EQ(t.region(0).present, 0u);
}

TEST(PageTable, Totals)
{
    PageTable t;
    t.growTo(3 * kPtesPerRegion);
    for (Vpn v = 0; v < 5; ++v)
        t.markMapped(v, false);
    t.notePresent(0);
    t.notePresent(1);
    EXPECT_EQ(t.totalMapped(), 5u);
    EXPECT_EQ(t.totalPresent(), 2u);
}

TEST(PageTable, RegionOfMath)
{
    EXPECT_EQ(regionOf(0), 0u);
    EXPECT_EQ(regionOf(kPtesPerRegion - 1), 0u);
    EXPECT_EQ(regionOf(kPtesPerRegion), 1u);
    EXPECT_EQ(regionBase(3), 3 * kPtesPerRegion);
}

} // namespace
} // namespace pagesim
