#include <gtest/gtest.h>

#include "../kernel/kernel_test_util.hh"
#include "trace/trace.hh"

namespace pagesim
{
namespace
{

TEST(TraceBuffer, RecordsInOrder)
{
    TraceBuffer trace(64);
    trace.emit(10, TraceEvent::MajorFault, 5);
    trace.emit(20, TraceEvent::Eviction, 6);
    trace.emit(30, TraceEvent::MinorFault, 7);
    const auto records = trace.snapshot();
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].at, 10u);
    EXPECT_EQ(records[0].event, TraceEvent::MajorFault);
    EXPECT_EQ(records[0].vpn, 5u);
    EXPECT_EQ(records[2].at, 30u);
    EXPECT_EQ(trace.count(TraceEvent::MajorFault), 1u);
    EXPECT_EQ(trace.count(TraceEvent::Eviction), 1u);
}

TEST(TraceBuffer, FlightRecorderDropsOldest)
{
    TraceBuffer trace(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        trace.emit(i * 100, TraceEvent::MajorFault, i);
    EXPECT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace.droppedRecords(), 6u);
    EXPECT_EQ(trace.totalEmitted(), 10u);
    const auto records = trace.snapshot();
    ASSERT_EQ(records.size(), 4u);
    // The newest four, chronological.
    EXPECT_EQ(records.front().vpn, 6u);
    EXPECT_EQ(records.back().vpn, 9u);
    for (std::size_t i = 1; i < records.size(); ++i)
        EXPECT_GT(records[i].at, records[i - 1].at);
    // Per-event counts track retained records only.
    EXPECT_EQ(trace.count(TraceEvent::MajorFault), 4u);
}

TEST(TraceBuffer, RateSeriesBucketsCorrectly)
{
    TraceBuffer trace;
    // 3 events in bucket 0, 1 in bucket 2.
    trace.emit(usecs(10), TraceEvent::MajorFault);
    trace.emit(usecs(20), TraceEvent::MajorFault);
    trace.emit(usecs(90), TraceEvent::MajorFault);
    trace.emit(usecs(210), TraceEvent::MajorFault);
    trace.emit(usecs(50), TraceEvent::Eviction); // other event
    const auto series =
        trace.rateSeries(TraceEvent::MajorFault, usecs(100),
                         usecs(250));
    ASSERT_EQ(series.size(), 3u);
    EXPECT_EQ(series[0], 3u);
    EXPECT_EQ(series[1], 0u);
    EXPECT_EQ(series[2], 1u);
}

TEST(TraceBuffer, RateSeriesAfterWraparoundCoversRetainedWindowOnly)
{
    // Regression test for the documented flight-recorder drop
    // semantics: once the ring wraps, the series covers only the
    // retained window — it starts at the oldest retained record, and
    // intervals older than that are gone entirely (their events
    // survive only in droppedRecords()) — and count(event) still
    // equals the series sum.
    TraceBuffer trace(4);
    for (std::uint64_t i = 0; i < 8; ++i)
        trace.emit(usecs(100 * i + 10), TraceEvent::MajorFault, i);
    EXPECT_EQ(trace.droppedRecords(), 4u);
    const auto series = trace.rateSeries(TraceEvent::MajorFault,
                                         usecs(100), usecs(800));
    // Retained records span [410us, 710us]; four 100us buckets
    // anchored at the oldest retained record, one event each.
    ASSERT_EQ(series.size(), 4u);
    std::uint64_t sum = 0;
    for (std::size_t b = 0; b < series.size(); ++b) {
        EXPECT_EQ(series[b], 1u) << "bucket " << b;
        sum += series[b];
    }
    EXPECT_EQ(sum, trace.count(TraceEvent::MajorFault));
}

TEST(TraceBuffer, BurstinessSeparatesSteadyFromBursty)
{
    TraceBuffer steady, bursty;
    for (int i = 0; i < 100; ++i)
        steady.emit(msecs(i), TraceEvent::MajorFault);
    for (int i = 0; i < 100; ++i)
        bursty.emit(msecs(i < 50 ? 1 : 90), TraceEvent::MajorFault);
    const double s =
        steady.burstiness(TraceEvent::MajorFault, msecs(10),
                          msecs(99));
    const double b =
        bursty.burstiness(TraceEvent::MajorFault, msecs(10),
                          msecs(99));
    EXPECT_LT(s, 0.3);
    EXPECT_GT(b, 1.5);
}

TEST(TraceBuffer, CsvExport)
{
    TraceBuffer trace;
    trace.emit(42, TraceEvent::Demotion, 7);
    const std::string csv = trace.toCsv();
    EXPECT_NE(csv.find("time_ns,event,vpn"), std::string::npos);
    EXPECT_NE(csv.find("42,demotion,7"), std::string::npos);
}

TEST(TraceBuffer, Sparkline)
{
    EXPECT_EQ(asciiSparkline({}), "");
    const std::string s = asciiSparkline({0, 1, 4, 8});
    EXPECT_FALSE(s.empty());
    // Max maps to the full block.
    EXPECT_NE(s.find("█"), std::string::npos);
    // All-zero series renders the lowest level everywhere.
    const std::string z = asciiSparkline({0, 0, 0});
    EXPECT_EQ(z, "▁▁▁");
}

TEST(TraceIntegration, MemoryManagerEmitsWhenAttached)
{
    KernelHarness h(48, 256);
    TraceBuffer trace;
    h.mm->attachTrace(&trace);
    Vpn v = h.base(); // persists across fault-retry wakeups
    ProbeActor probe(h.sim, [&](ProbeActor &self) {
        CostSink sink;
        for (; v < h.base() + 100; ++v) {
            const auto o = h.mm->access(self, h.space, v, true, sink);
            if (o == MemoryManager::AccessOutcome::Blocked) {
                self.block();
                return;
            }
        }
        self.finish();
    });
    probe.start();
    ASSERT_TRUE(h.sim.runToCompletion(20000000));
    h.sim.events().run();
    EXPECT_EQ(trace.count(TraceEvent::MinorFault), 100u);
    EXPECT_EQ(trace.count(TraceEvent::Eviction),
              h.mm->stats().evictions);
    EXPECT_EQ(trace.count(TraceEvent::DirtyWriteback),
              h.mm->stats().dirtyWritebacks);
    // Timestamps are monotone.
    const auto records = trace.snapshot();
    for (std::size_t i = 1; i < records.size(); ++i)
        EXPECT_GE(records[i].at, records[i - 1].at);
}

TEST(TraceIntegration, DetachedTraceCostsNothing)
{
    KernelHarness h(48, 256);
    // No attachTrace: nothing should break, nothing recorded.
    ProbeActor probe(h.sim, [&](ProbeActor &self) {
        CostSink sink;
        h.mm->access(self, h.space, h.base(), true, sink);
        self.finish();
    });
    probe.start();
    EXPECT_TRUE(h.sim.runToCompletion());
}

} // namespace
} // namespace pagesim
