#include <gtest/gtest.h>

#include "kernel_test_util.hh"

namespace pagesim
{
namespace
{

using Outcome = MemoryManager::AccessOutcome;

/** Actor that touches a working set larger than memory, twice. */
class SweepActor : public ProbeActor
{
  public:
    SweepActor(KernelHarness &h, std::uint64_t pages, int rounds)
        : ProbeActor(h.sim,
                     [this](ProbeActor &self) { this->run(self); }),
          h_(h), pages_(pages), rounds_(rounds)
    {
    }

    std::uint64_t touches = 0;

  private:
    void
    run(ProbeActor &self)
    {
        while (round_ < rounds_) {
            while (i_ < pages_) {
                CostSink sink;
                const Outcome o = h_.mm->access(
                    self, h_.space, h_.base() + i_, true, sink);
                if (o == Outcome::Blocked) {
                    self.block();
                    return;
                }
                ++touches;
                ++i_;
                if (touches % 32 == 0) {
                    self.yieldAfter(sink.total() + 1000);
                    return;
                }
            }
            i_ = 0;
            ++round_;
        }
        self.finish();
    }

    KernelHarness &h_;
    std::uint64_t pages_;
    int rounds_;
    std::uint64_t i_ = 0;
    int round_ = 0;
};

TEST(Reclaim, OversubscribedSweepCompletesWithDirectReclaim)
{
    // 64 frames, 200-page working set: the sweep must force reclaim.
    KernelHarness h(64, 256);
    SweepActor sweeper(h, 200, 2);
    sweeper.start();
    ASSERT_TRUE(h.sim.runToCompletion(50000000));
    EXPECT_EQ(sweeper.touches, 400u);
    EXPECT_GT(h.mm->stats().evictions, 100u);
    EXPECT_GT(h.mm->stats().majorFaults, 0u) << "second round refaults";
    // Memory never exceeded capacity.
    EXPECT_LE(h.frames.usedFrames(), h.frames.totalFrames());
}

TEST(Reclaim, KswapdKeepsFreePagesAboveWatermark)
{
    // A machine large enough that kswapd has real runway between the
    // low watermark and exhaustion.
    KernelHarness h(256, 1024);
    Kswapd kswapd(h.sim, *h.mm);
    h.mm->attachKswapd(&kswapd);
    kswapd.start();
    AgingDaemon aging(h.sim, *h.mm, h.sim.forkRng("aging"));
    h.mm->attachAgingDaemon(&aging);
    aging.start();

    SweepActor sweeper(h, 700, 2);
    sweeper.start();
    ASSERT_TRUE(h.sim.runToCompletion(50000000));
    EXPECT_GT(kswapd.reclaimed(), 0u)
        << "background reclaim participated";
    // After the run settles, kswapd balanced free memory.
    h.sim.events().runUntil(h.sim.now() + secs(1));
    EXPECT_GE(h.frames.freeFrames(), h.config.lowWatermark);
}

TEST(Reclaim, AgingDaemonRunsPassesForMgLru)
{
    KernelHarness h(64, 256, false, PolicyKind::MgLru);
    Kswapd kswapd(h.sim, *h.mm);
    h.mm->attachKswapd(&kswapd);
    kswapd.start();
    AgingDaemon aging(h.sim, *h.mm, h.sim.forkRng("aging"));
    h.mm->attachAgingDaemon(&aging);
    aging.start();

    SweepActor sweeper(h, 200, 3);
    sweeper.start();
    ASSERT_TRUE(h.sim.runToCompletion(50000000));
    EXPECT_GT(h.policy->stats().agingPasses, 0u);
}

TEST(Reclaim, ClockWorksWithoutAgingDaemon)
{
    KernelHarness h(64, 256, false, PolicyKind::Clock);
    Kswapd kswapd(h.sim, *h.mm);
    h.mm->attachKswapd(&kswapd);
    kswapd.start();
    SweepActor sweeper(h, 200, 2);
    sweeper.start();
    ASSERT_TRUE(h.sim.runToCompletion(50000000));
    EXPECT_GT(h.mm->stats().evictions, 100u);
}

TEST(Reclaim, ZramSweepIsFasterThanSsd)
{
    SimTime ssd_time, zram_time;
    {
        KernelHarness h(64, 256, /*zram=*/false);
        SweepActor sweeper(h, 200, 2);
        sweeper.start();
        ASSERT_TRUE(h.sim.runToCompletion(50000000));
        ssd_time = h.sim.now();
    }
    {
        KernelHarness h(64, 256, /*zram=*/true);
        SweepActor sweeper(h, 200, 2);
        sweeper.start();
        ASSERT_TRUE(h.sim.runToCompletion(50000000));
        zram_time = h.sim.now();
    }
    EXPECT_LT(zram_time, ssd_time / 10)
        << "two orders of magnitude cheaper swap must show";
}

TEST(Reclaim, EveryPolicySurvivesThrash)
{
    for (PolicyKind kind : allPolicyKinds()) {
        KernelHarness h(48, 256, false, kind);
        Kswapd kswapd(h.sim, *h.mm);
        h.mm->attachKswapd(&kswapd);
        kswapd.start();
        std::unique_ptr<AgingDaemon> aging;
        if (kind != PolicyKind::Clock) {
            aging = std::make_unique<AgingDaemon>(
                h.sim, *h.mm, h.sim.forkRng("aging"));
            h.mm->attachAgingDaemon(aging.get());
            aging->start();
        }
        SweepActor sweeper(h, 200, 2);
        sweeper.start();
        ASSERT_TRUE(h.sim.runToCompletion(100000000))
            << policyKindName(kind);
        EXPECT_EQ(sweeper.touches, 400u) << policyKindName(kind);
    }
}

} // namespace
} // namespace pagesim
