#include <gtest/gtest.h>

#include "kernel/aging_daemon.hh"
#include "kernel_test_util.hh"
#include "policy/mglru/mglru_policy.hh"

namespace pagesim
{
namespace
{

TEST(AgingDaemon, WalksWhenPolicyWantsAging)
{
    KernelHarness h(64, 256, false, PolicyKind::MgLru);
    AgingDaemon daemon(h.sim, *h.mm, h.sim.forkRng("aging"));
    h.mm->attachAgingDaemon(&daemon);
    daemon.start();

    // Populate some pages so walks have work, then drive time.
    ProbeActor probe(h.sim, [&](ProbeActor &self) {
        CostSink sink;
        for (Vpn v = h.base(); v < h.base() + 40; ++v)
            h.mm->access(self, h.space, v, true, sink);
        self.finish();
    });
    probe.start();
    ASSERT_TRUE(h.sim.runToCompletion(10000000));
    h.sim.events().runUntil(h.sim.now() + msecs(400));
    // A fresh MG-LRU starts at the minimum generation count, so the
    // daemon must have aged at least once.
    EXPECT_GT(daemon.passes(), 0u);
    EXPECT_GT(daemon.cpuWork(), 0u);
}

TEST(AgingDaemon, SlicedWalkSpansSimTime)
{
    KernelHarness h(512, 4096, false, PolicyKind::MgLru);
    auto *mg = dynamic_cast<MgLruPolicy *>(h.policy.get());
    ASSERT_NE(mg, nullptr);
    // Make lots of regions scannable.
    ProbeActor probe(h.sim, [&](ProbeActor &self) {
        CostSink sink;
        for (Vpn v = h.base(); v < h.base() + 500; v += 7)
            h.mm->access(self, h.space, v, true, sink);
        self.finish();
    });
    probe.start();
    ASSERT_TRUE(h.sim.runToCompletion(10000000));

    AgingDaemon daemon(h.sim, *h.mm, h.sim.forkRng("aging"));
    h.mm->attachAgingDaemon(&daemon);
    daemon.start();
    const SimTime before = h.sim.now();
    // Run until the first full pass completes.
    h.sim.events().runWhile(
        [&] { return daemon.passes() == 0; });
    // The walk is paced (slices + gaps), not instantaneous.
    EXPECT_GT(h.sim.now() - before, h.mm->config().agingSliceGap);
}

TEST(AgingDaemon, IdlesUnderClock)
{
    KernelHarness h(64, 256, false, PolicyKind::Clock);
    AgingDaemon daemon(h.sim, *h.mm, h.sim.forkRng("aging"));
    h.mm->attachAgingDaemon(&daemon);
    daemon.start();
    h.sim.events().runUntil(msecs(100));
    EXPECT_EQ(daemon.passes(), 0u)
        << "Clock has no page-table walker";
}

} // namespace
} // namespace pagesim
