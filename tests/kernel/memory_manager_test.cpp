#include <gtest/gtest.h>

#include "kernel_test_util.hh"

namespace pagesim
{
namespace
{

using Outcome = MemoryManager::AccessOutcome;

TEST(MemoryManager, FirstTouchIsMinorFault)
{
    KernelHarness h;
    bool checked = false;
    ProbeActor probe(h.sim, [&](ProbeActor &self) {
        CostSink sink;
        const Outcome o =
            h.mm->access(self, h.space, h.base(), false, sink);
        EXPECT_EQ(o, Outcome::MinorFault);
        EXPECT_GE(sink.total(), h.config.costs.faultFixed);
        checked = true;
        self.finish();
    });
    probe.start();
    EXPECT_TRUE(h.sim.runToCompletion());
    EXPECT_TRUE(checked);
    EXPECT_EQ(h.mm->stats().minorFaults, 1u);
    EXPECT_TRUE(h.space.table().at(h.base()).present());
    EXPECT_TRUE(h.space.table().at(h.base()).accessed());
}

TEST(MemoryManager, SecondTouchIsHit)
{
    KernelHarness h;
    ProbeActor probe(h.sim, [&](ProbeActor &self) {
        CostSink sink;
        h.mm->access(self, h.space, h.base(), false, sink);
        const Outcome o =
            h.mm->access(self, h.space, h.base(), true, sink);
        EXPECT_EQ(o, Outcome::Hit);
        EXPECT_TRUE(h.space.table().at(h.base()).dirty());
        self.finish();
    });
    probe.start();
    EXPECT_TRUE(h.sim.runToCompletion());
    EXPECT_EQ(h.mm->stats().minorFaults, 1u);
}

TEST(MemoryManager, MajorFaultBlocksOnSsdAndRetrySucceeds)
{
    KernelHarness h;
    int phase = 0;
    ProbeActor probe(h.sim, [&](ProbeActor &self) {
        CostSink sink;
        if (phase == 0) {
            // Populate, then manually evict the page.
            h.mm->access(self, h.space, h.base(), true, sink);
            CostSink rsink;
            std::vector<Pfn> victims;
            // Fill enough pages that the policy can evict ours...
            // simpler: evict directly through the policy.
            const Pfn pfn = h.space.table().at(h.base()).pfn();
            const std::uint32_t shadow = h.policy->onPageRemoved(pfn);
            const SwapSlot slot = h.swap->allocate();
            h.space.table().unmapToSwap(h.base(), slot, shadow);
            h.frames.release(pfn);
            phase = 1;
            // Now fault it back: must block on device read.
            const Outcome o =
                h.mm->access(self, h.space, h.base(), false, sink);
            EXPECT_EQ(o, Outcome::Blocked);
            self.block();
            return;
        }
        // Woken after I/O: retry must hit.
        const Outcome o =
            h.mm->access(self, h.space, h.base(), false, sink);
        EXPECT_EQ(o, Outcome::Hit);
        phase = 2;
        self.finish();
    });
    probe.start();
    EXPECT_TRUE(h.sim.runToCompletion());
    EXPECT_EQ(phase, 2);
    EXPECT_EQ(h.mm->stats().majorFaults, 1u);
    // The swap-in took at least the device's raw service time.
    EXPECT_GE(h.sim.now(), msecs(1));
    // Swap-cache: the backing slot is retained for clean reuse.
    const Pfn pfn = h.space.table().at(h.base()).pfn();
    EXPECT_NE(h.frames.info(pfn).backing, kInvalidSlot);
}

TEST(MemoryManager, ZramFaultIsSynchronousCpuWork)
{
    KernelHarness h(64, 256, /*zram=*/true);
    ProbeActor probe(h.sim, [&](ProbeActor &self) {
        CostSink sink;
        h.mm->access(self, h.space, h.base(), true, sink);
        const Pfn pfn = h.space.table().at(h.base()).pfn();
        const std::uint32_t shadow = h.policy->onPageRemoved(pfn);
        const SwapSlot slot = h.swap->allocate();
        h.swap->recordContents(slot, 1);
        h.space.table().unmapToSwap(h.base(), slot, shadow);
        h.frames.release(pfn);
        sink.take();
        const Outcome o =
            h.mm->access(self, h.space, h.base(), false, sink);
        EXPECT_EQ(o, Outcome::SyncFault);
        // Decompression cost landed in the sink (>= ~0.5x nominal).
        EXPECT_GE(sink.total(), usecs(10));
        self.finish();
    });
    probe.start();
    EXPECT_TRUE(h.sim.runToCompletion());
    EXPECT_EQ(h.mm->stats().majorFaults, 1u);
    EXPECT_EQ(h.device->stats().reads, 1u);
}

TEST(MemoryManager, DuplicateFaultWaitsOnExistingIo)
{
    KernelHarness h;
    // Two actors fault the same swapped-out page; only one read goes
    // to the device.
    Vpn target = h.base();
    // Set up a swapped-out PTE directly.
    {
        const auto pte = h.space.table().at(target);
        const SwapSlot slot = h.swap->allocate();
        // lint:pte-direct-ok(fixture seeds a swapped-out PTE from the
        // never-mapped state, which touches no tracked bitmap; the
        // PageTable mutator asserts present() and cannot express this)
        pte.unmapToSwap(slot, 0);
    }
    int hits = 0;
    auto script = [&](ProbeActor &self) {
        CostSink sink;
        const Outcome o =
            h.mm->access(self, h.space, target, false, sink);
        if (o == Outcome::Blocked) {
            self.block();
            return;
        }
        EXPECT_EQ(o, Outcome::Hit);
        ++hits;
        self.finish();
    };
    ProbeActor a(h.sim, script), b(h.sim, script);
    a.start();
    b.start();
    EXPECT_TRUE(h.sim.runToCompletion());
    EXPECT_EQ(hits, 2);
    EXPECT_EQ(h.device->stats().reads, 1u) << "one I/O, two waiters";
    EXPECT_EQ(h.mm->stats().majorFaults, 1u);
    EXPECT_EQ(h.mm->stats().ioWaitFaults, 1u);
}

TEST(MemoryManager, ReadaheadPullsNeighborSlots)
{
    KernelHarness h(64, 256);
    // Swap out a run of pages at base..base+7.
    for (Vpn v = h.base(); v < h.base() + 8; ++v) {
        const auto pte = h.space.table().at(v);
        // lint:pte-direct-ok(seeds swapped-out PTEs from the
        // never-mapped state; no tracked bitmap is touched and the
        // PageTable mutator asserts present())
        pte.unmapToSwap(h.swap->allocate(), 0);
    }
    ProbeActor probe(h.sim, [&](ProbeActor &self) {
        CostSink sink;
        const Outcome o =
            h.mm->access(self, h.space, h.base(), false, sink);
        if (o == Outcome::Blocked) {
            self.block();
            return;
        }
        self.finish();
    });
    probe.start();
    EXPECT_TRUE(h.sim.runToCompletion());
    // One demand read plus readahead for neighbors.
    EXPECT_GT(h.device->stats().reads, 1u);
    EXPECT_EQ(h.mm->stats().majorFaults, 1u);
    EXPECT_GT(h.mm->stats().readaheadReads, 0u);
    // Neighbor pages are resident but NOT marked accessed.
    EXPECT_TRUE(h.space.table().at(h.base() + 1).present());
    EXPECT_FALSE(h.space.table().at(h.base() + 1).accessed());
}

TEST(MemoryManager, NoReadaheadOnZram)
{
    KernelHarness h(64, 256, /*zram=*/true);
    h.config.readaheadPages = 1; // as the harness sets for zram
    for (Vpn v = h.base(); v < h.base() + 8; ++v) {
        const auto pte = h.space.table().at(v);
        // lint:pte-direct-ok(seeds swapped-out PTEs from the
        // never-mapped state; no tracked bitmap is touched and the
        // PageTable mutator asserts present())
        pte.unmapToSwap(h.swap->allocate(), 0);
        h.swap->recordContents(pte.swapSlot(), v);
    }
    ProbeActor probe(h.sim, [&](ProbeActor &self) {
        CostSink sink;
        h.mm->access(self, h.space, h.base(), false, sink);
        self.finish();
    });
    probe.start();
    EXPECT_TRUE(h.sim.runToCompletion());
    EXPECT_EQ(h.device->stats().reads, 1u);
}

TEST(MemoryManager, CleanPageEvictsWithoutWriteback)
{
    KernelHarness h;
    // Fault a page in from swap (clean), then evict it again: the
    // retained backing slot means no write I/O.
    Vpn target = h.base();
    {
        const auto pte = h.space.table().at(target);
        // lint:pte-direct-ok(seeds a swapped-out PTE from the
        // never-mapped state; no tracked bitmap is touched and the
        // PageTable mutator asserts present())
        pte.unmapToSwap(h.swap->allocate(), 0);
    }
    ProbeActor probe(h.sim, [&](ProbeActor &self) {
        CostSink sink;
        const Outcome o =
            h.mm->access(self, h.space, target, false, sink);
        if (o == Outcome::Blocked) {
            self.block();
            return;
        }
        // Clear the accessed bit so eviction doesn't promote it.
        h.space.table().clearAccessed(target);
        self.finish();
    });
    probe.start();
    EXPECT_TRUE(h.sim.runToCompletion());
    const std::uint64_t writes_before = h.device->stats().writes;
    // Force reclaim of everything evictable.
    CostSink sink;
    while (h.mm->reclaimBatch(sink, true) > 0) {
    }
    h.sim.events().run();
    EXPECT_EQ(h.device->stats().writes, writes_before)
        << "clean swap-cache page must drop without writeback";
    EXPECT_GT(h.mm->stats().cleanDrops, 0u);
}

TEST(MemoryManager, DirtyPageWritesBackOnEviction)
{
    KernelHarness h;
    ProbeActor probe(h.sim, [&](ProbeActor &self) {
        CostSink sink;
        h.mm->access(self, h.space, h.base(), /*write=*/true, sink);
        h.space.table().clearAccessed(h.base());
        self.finish();
    });
    probe.start();
    EXPECT_TRUE(h.sim.runToCompletion());
    CostSink sink;
    h.mm->reclaimBatch(sink, true);
    h.sim.events().run();
    EXPECT_EQ(h.device->stats().writes, 1u);
    EXPECT_EQ(h.mm->stats().dirtyWritebacks, 1u);
    EXPECT_TRUE(h.space.table().at(h.base()).swapped());
    EXPECT_EQ(h.frames.freeFrames(), h.frames.totalFrames());
}

} // namespace
} // namespace pagesim
