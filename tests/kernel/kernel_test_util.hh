/**
 * @file
 * Kernel-layer test fixture: a full machine (sim + frames + swap +
 * policy + MM) with a scriptable probe actor for driving accesses.
 */

#ifndef PAGESIM_TESTS_KERNEL_TEST_UTIL_HH
#define PAGESIM_TESTS_KERNEL_TEST_UTIL_HH

#include <functional>
#include <memory>

#include "check/mm_audit.hh"
#include "kernel/aging_daemon.hh"
#include "kernel/kswapd.hh"
#include "kernel/memory_manager.hh"
#include "policy/policy_factory.hh"
#include "sim/simulation.hh"
#include "swap/ssd_device.hh"
#include "swap/swap_manager.hh"
#include "swap/zram_device.hh"

namespace pagesim
{

/** An actor whose step() runs a user-provided script. */
class ProbeActor : public SimActor
{
  public:
    using Script = std::function<void(ProbeActor &)>;

    ProbeActor(Simulation &sim, Script script)
        : SimActor(sim, "probe", true), script_(std::move(script))
    {
    }

    using SimActor::block;
    using SimActor::finish;
    using SimActor::yieldAfter;

  protected:
    void step() override { script_(*this); }

  private:
    Script script_;
};

/** A machine with pluggable swap and policy for kernel tests. */
struct KernelHarness
{
    Simulation sim;
    FrameTable frames;
    AddressSpace space;
    std::unique_ptr<SwapDevice> device;
    std::unique_ptr<SwapManager> swap;
    std::unique_ptr<ReplacementPolicy> policy;
    MmConfig config;
    std::unique_ptr<MemoryManager> mm;
    std::unique_ptr<MmAuditor> auditor;

    explicit
    KernelHarness(std::uint32_t nframes = 64,
                  std::uint64_t vma_pages = 256,
                  bool zram = false,
                  PolicyKind kind = PolicyKind::MgLru)
        : sim(4, 7), frames(nframes), space(0)
    {
        space.map("test", vma_pages);
        if (zram) {
            device = std::make_unique<ZramSwapDevice>();
        } else {
            SsdConfig ssd;
            ssd.jitterSigma = 0.0;
            device = std::make_unique<SsdSwapDevice>(
                sim.events(), sim.forkRng("ssd"), ssd);
        }
        swap = std::make_unique<SwapManager>(*device, 4096);
        config.totalFrames = nframes;
        config.deriveWatermarks();
        // Kernel tests run with the invariant auditor on every reclaim
        // batch, aborting on the first violation.
        config.auditEvery = 1;
        policy = makePolicy(kind, frames, {&space}, config.costs,
                            sim.forkRng("policy"), {}, &sim.events());
        mm = std::make_unique<MemoryManager>(sim, frames, *swap,
                                             *policy, config);
        auditor = std::make_unique<MmAuditor>(
            *mm, std::vector<const AddressSpace *>{&space});
        auditor->installPeriodic(/*hard_fail=*/true);
    }

    Vpn base() const { return space.vmas().front().start; }
};

/**
 * A machine with N memcgs (one address space + policy instance each)
 * for multi-tenant kernel tests. Tenant i's space has id i and is
 * assigned to memcg i before any fault.
 */
struct MultiKernelHarness
{
    /** One tenant's watermarks + policy kind. */
    struct TenantSetup
    {
        MemcgConfig config;
        PolicyKind kind = PolicyKind::MgLru;
        std::uint64_t vmaPages = 256;
    };

    Simulation sim;
    FrameTable frames;
    std::vector<std::unique_ptr<AddressSpace>> spaces;
    std::unique_ptr<SwapDevice> device;
    std::unique_ptr<SwapManager> swap;
    std::vector<std::unique_ptr<ReplacementPolicy>> policies;
    MmConfig config;
    std::unique_ptr<MemoryManager> mm;
    std::unique_ptr<MmAuditor> auditor;

    explicit
    MultiKernelHarness(const std::vector<TenantSetup> &tenants,
                       std::uint32_t nframes = 64)
        : sim(4, 7), frames(nframes)
    {
        SsdConfig ssd;
        ssd.jitterSigma = 0.0;
        device = std::make_unique<SsdSwapDevice>(
            sim.events(), sim.forkRng("ssd"), ssd);
        swap = std::make_unique<SwapManager>(*device, 4096);
        config.totalFrames = nframes;
        config.deriveWatermarks();
        config.auditEvery = 1;

        std::vector<MemcgSpec> specs;
        for (std::size_t i = 0; i < tenants.size(); ++i) {
            auto sp = std::make_unique<AddressSpace>(
                static_cast<std::uint32_t>(i));
            sp->map("tenant", tenants[i].vmaPages);
            sp->setMemcg(static_cast<MemcgId>(i));
            policies.push_back(makePolicy(
                tenants[i].kind, frames, {sp.get()}, config.costs,
                sim.forkRng("policy-" + tenants[i].config.name), {},
                &sim.events()));
            MemcgSpec spec;
            spec.config = tenants[i].config;
            spec.policy = policies.back().get();
            specs.push_back(std::move(spec));
            spaces.push_back(std::move(sp));
        }
        mm = std::make_unique<MemoryManager>(sim, frames, *swap, specs,
                                             config);
        std::vector<const AddressSpace *> audit_spaces;
        for (const auto &sp : spaces)
            audit_spaces.push_back(sp.get());
        auditor = std::make_unique<MmAuditor>(*mm, audit_spaces);
        auditor->installPeriodic(/*hard_fail=*/true);
    }

    Vpn
    base(std::size_t tenant) const
    {
        return spaces[tenant]->vmas().front().start;
    }
};

} // namespace pagesim

#endif // PAGESIM_TESTS_KERNEL_TEST_UTIL_HH
