/**
 * @file
 * Regression tests for the fidelity bugfix batch. Each test encodes
 * behavior that was wrong before the fix:
 *
 *  - ZRAM write cost was computed from the slot's *previous* contents
 *    (the tag was recorded after charging), so every first writeback
 *    charged the nominal latency regardless of compressibility.
 *  - fd-access (buffered I/O) swap-ins set the PTE accessed bit, which
 *    buffered I/O must never do — it hands MG-LRU's aging walk a
 *    signal the real kernel only delivers via use counts.
 *  - A fault that waited out an in-flight writeback and got remapped
 *    was counted as BOTH an ioWaitFault (at block time) and a
 *    minorFault (at remap time), inflating fault totals.
 */

#include <gtest/gtest.h>

#include "kernel_test_util.hh"

namespace pagesim
{
namespace
{

using Outcome = MemoryManager::AccessOutcome;

/**
 * Charge of evicting a single dirty page at @p vpn to ZRAM, on a fresh
 * machine. Apart from the compress cost, every contribution to the
 * sink is identical across target pages, so charge differences isolate
 * the content-dependent compression work.
 */
SimDuration
zramEvictionCharge(Vpn vpn_offset)
{
    KernelHarness h(64, 256, /*zram=*/true);
    const Vpn target = h.base() + vpn_offset;
    ProbeActor probe(h.sim, [&](ProbeActor &self) {
        CostSink sink;
        h.mm->access(self, h.space, target, /*write=*/true, sink);
        h.space.table().clearAccessed(target);
        self.finish();
    });
    probe.start();
    EXPECT_TRUE(h.sim.runToCompletion());
    CostSink sink;
    EXPECT_EQ(h.mm->reclaimBatch(sink, true), 1u);
    EXPECT_TRUE(h.space.table().at(target).swapped());
    return sink.total();
}

TEST(FidelityFix, ZramWriteCostTracksPageCompressibility)
{
    // Pick one near-incompressible and one highly compressible page
    // from the VMA (space id 0 makes contentTag(space, v) == v).
    Vpn easy = AuditViolation::kNoVpn, hard = AuditViolation::kNoVpn;
    {
        KernelHarness probe_h(64, 256, /*zram=*/true);
        for (Vpn off = 0; off < 256; ++off) {
            const std::uint32_t sz = ZramSwapDevice::compressedSize(
                MemoryManager::contentTag(probe_h.space,
                                          probe_h.base() + off));
            if (sz < 500 && easy == AuditViolation::kNoVpn)
                easy = off;
            if (sz > 3500 && hard == AuditViolation::kNoVpn)
                hard = off;
        }
    }
    ASSERT_NE(easy, AuditViolation::kNoVpn);
    ASSERT_NE(hard, AuditViolation::kNoVpn);

    const SimDuration cheap = zramEvictionCharge(easy);
    const SimDuration dear = zramEvictionCharge(hard);
    // Before the fix the compress charge ignored the page being
    // written (the fresh slot had no recorded contents yet), so both
    // evictions cost the same. With cost scale 0.5 + 0.8*fraction and
    // a 35 us nominal write, the spread here must exceed ~20 us.
    EXPECT_GT(dear, cheap + usecs(15));
}

TEST(FidelityFix, FdAccessSwapInLeavesNoAccessedBit)
{
    KernelHarness h(64, 256, /*zram=*/true);
    const Vpn target = h.base();
    int phase = 0;
    ProbeActor probe(h.sim, [&](ProbeActor &self) {
        CostSink sink;
        // Populate through buffered I/O, evict, then fd-fault back.
        h.mm->fdAccess(self, h.space, target, /*write=*/true, sink);
        CostSink rsink;
        EXPECT_EQ(h.mm->reclaimBatch(rsink, true), 1u);
        EXPECT_TRUE(h.space.table().at(target).swapped());
        const Outcome o =
            h.mm->fdAccess(self, h.space, target, false, sink);
        EXPECT_EQ(o, Outcome::SyncFault);
        phase = 1;
        self.finish();
    });
    probe.start();
    EXPECT_TRUE(h.sim.runToCompletion());
    ASSERT_EQ(phase, 1);

    const auto pte = h.space.table().at(target);
    ASSERT_TRUE(pte.present());
    // Buffered I/O must not leave a PTE accessed bit behind...
    EXPECT_FALSE(pte.accessed())
        << "fd-access swap-in set the accessed bit";
    // ...the policy's use-count path is the only signal.
    EXPECT_GE(h.frames.info(pte.pfn()).refs, 1u);
}

TEST(FidelityFix, FdAccessAsyncSwapInLeavesNoAccessedBit)
{
    KernelHarness h; // SSD: async demand swap-in
    const Vpn target = h.base();
    // Populate and fully evict the page (writeback completes, no
    // waiters), so the fd re-access below is a clean async swap-in.
    ProbeActor setup(h.sim, [&](ProbeActor &self) {
        CostSink sink;
        h.mm->access(self, h.space, target, /*write=*/true, sink);
        h.space.table().clearAccessed(target);
        self.finish();
    });
    setup.start();
    EXPECT_TRUE(h.sim.runToCompletion());
    CostSink rsink;
    EXPECT_EQ(h.mm->reclaimBatch(rsink, true), 1u);
    h.sim.events().run();
    ASSERT_TRUE(h.space.table().at(target).swapped());
    ASSERT_FALSE(h.space.table().at(target).inIo());

    int phase = 0;
    ProbeActor probe(h.sim, [&](ProbeActor &self) {
        CostSink sink;
        const Outcome o =
            h.mm->fdAccess(self, h.space, target, false, sink);
        if (o == Outcome::Blocked) {
            phase = 1;
            self.block();
            return;
        }
        EXPECT_EQ(o, Outcome::Hit);
        phase = 2;
        self.finish();
    });
    probe.start();
    EXPECT_TRUE(h.sim.runToCompletion());
    ASSERT_EQ(phase, 2);
    const auto pte = h.space.table().at(target);
    ASSERT_TRUE(pte.present());
    EXPECT_FALSE(pte.accessed())
        << "async fd-access swap-in set the accessed bit";
    EXPECT_EQ(h.mm->stats().majorFaults, 1u);
}

TEST(FidelityFix, WritebackRemapIsNotDoubleCountedAsFault)
{
    KernelHarness h; // SSD: async writeback
    const Vpn target = h.base();
    int phase = 0;
    ProbeActor probe(h.sim, [&](ProbeActor &self) {
        CostSink sink;
        if (phase == 0) {
            h.mm->access(self, h.space, target, /*write=*/true, sink);
            h.space.table().clearAccessed(target);
            CostSink rsink;
            EXPECT_EQ(h.mm->reclaimBatch(rsink, true), 1u);
            // Dirty page: writeback now in flight.
            EXPECT_EQ(h.mm->writebacksInFlight(), 1u);
            EXPECT_TRUE(h.space.table().at(target).inIo());
            phase = 1;
            // Re-want the page mid-writeback: must wait on the I/O.
            const Outcome o =
                h.mm->access(self, h.space, target, false, sink);
            EXPECT_EQ(o, Outcome::Blocked);
            self.block();
            return;
        }
        // Woken by the writeback-remap: the page is back.
        const Outcome o =
            h.mm->access(self, h.space, target, false, sink);
        EXPECT_EQ(o, Outcome::Hit);
        phase = 2;
        self.finish();
    });
    probe.start();
    EXPECT_TRUE(h.sim.runToCompletion());
    ASSERT_EQ(phase, 2);

    const FaultStats &st = h.mm->stats();
    EXPECT_EQ(st.writebackRemaps, 1u);
    EXPECT_EQ(st.ioWaitFaults, 1u);
    // The remap itself is not a fault: only the first touch counts.
    EXPECT_EQ(st.minorFaults, 1u)
        << "writeback remap was double-counted as a minor fault";
    EXPECT_EQ(st.majorFaults, 0u);
}

} // namespace
} // namespace pagesim
