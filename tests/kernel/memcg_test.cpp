/**
 * @file
 * Memcg unit tests (charge accounting, watermark predicates,
 * proportional fan-out math) plus multi-tenant behavior tests: the
 * memory.max / memory.high / memory.low mechanisms, the aging daemon
 * serving every memcg's lruvec, per-memcg metrics registration, and
 * balloon frames staying uncharged. The daemon and metrics cases are
 * regressions for pre-memcg singleton assumptions (both consulted
 * mm.policy() — the root lruvec — only).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "kernel/mm_metrics.hh"
#include "kernel_test_util.hh"
#include "metrics/collector.hh"
#include "sim/rng.hh"

namespace pagesim
{
namespace
{

using Outcome = MemoryManager::AccessOutcome;

// ---- distributeProportional --------------------------------------------

TEST(DistributeProportional, SmallSumTakesEveryWeightFully)
{
    const std::vector<std::uint64_t> weights{10, 20, 5};
    const auto shares = distributeProportional(weights, 100, 0);
    ASSERT_EQ(shares.size(), 3u);
    EXPECT_EQ(shares[0], 10u);
    EXPECT_EQ(shares[1], 20u);
    EXPECT_EQ(shares[2], 5u);
}

TEST(DistributeProportional, RemainderRotatesWithCursor)
{
    // Equal weights, batch 10: floor shares 3/3/3 and one remainder
    // frame that must land on the cursor's memcg.
    const std::vector<std::uint64_t> weights{10, 10, 10};
    const std::vector<std::vector<std::uint32_t>> expect{
        {4, 3, 3}, {3, 4, 3}, {3, 3, 4}};
    for (std::size_t cursor = 0; cursor < 3; ++cursor) {
        const auto shares = distributeProportional(weights, 10, cursor);
        EXPECT_EQ(shares, expect[cursor]) << "cursor " << cursor;
    }
}

TEST(DistributeProportional, ZeroBatchAndZeroWeights)
{
    const std::vector<std::uint64_t> weights{5, 7};
    for (const std::uint32_t s :
         distributeProportional(weights, 0, 0)) {
        EXPECT_EQ(s, 0u);
    }
    const std::vector<std::uint64_t> none{0, 0, 0};
    for (const std::uint32_t s :
         distributeProportional(none, 32, 1)) {
        EXPECT_EQ(s, 0u);
    }
}

TEST(DistributeProportional, PostconditionsHoldOnRandomInputs)
{
    Rng rng(0xfa0u);
    for (int iter = 0; iter < 500; ++iter) {
        const std::size_t n = 1 + rng.nextU64() % 6;
        std::vector<std::uint64_t> weights(n);
        for (auto &w : weights)
            w = rng.nextU64() % 50;
        const auto batch =
            static_cast<std::uint32_t>(rng.nextU64() % 100);
        const std::size_t cursor = rng.nextU64() % n;
        const auto shares =
            distributeProportional(weights, batch, cursor);
        ASSERT_EQ(shares.size(), n);
        std::uint64_t sum_w = 0, sum_s = 0;
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_LE(shares[i], weights[i]) << "share over weight";
            sum_w += weights[i];
            sum_s += shares[i];
        }
        EXPECT_EQ(sum_s, std::min<std::uint64_t>(batch, sum_w));
    }
}

// ---- Memcg charge accounting -------------------------------------------

TEST(Memcg, ChargeMovesLaneAndUsageTogether)
{
    KernelHarness h(8);
    MemcgConfig cfg;
    cfg.name = "unit";
    Memcg m(3, cfg, *h.policy);

    std::vector<Pfn> pfns;
    for (int i = 0; i < 3; ++i)
        pfns.push_back(h.frames.allocate(&h.space, h.base() + i, false));
    for (const Pfn p : pfns) {
        ASSERT_NE(p, kInvalidPfn);
        EXPECT_EQ(h.frames.info(p).memcg, kNoMemcg);
        m.charge(h.frames.info(p));
        EXPECT_EQ(h.frames.info(p).memcg, MemcgId{3});
    }
    EXPECT_EQ(m.usage(), 3u);
    EXPECT_EQ(m.stats().peakUsage, 3u);

    m.uncharge(h.frames.info(pfns[1]));
    EXPECT_EQ(m.usage(), 2u);
    EXPECT_EQ(h.frames.info(pfns[1]).memcg, kNoMemcg);
    // Peak is a high-water mark: uncharging never lowers it.
    EXPECT_EQ(m.stats().peakUsage, 3u);
}

TEST(Memcg, NoLimitDefaultsDegenerateToUnlimited)
{
    KernelHarness h(8);
    Memcg m(0, MemcgConfig{}, *h.policy);
    const Pfn p = h.frames.allocate(&h.space, h.base(), false);
    m.charge(h.frames.info(p));

    EXPECT_FALSE(m.config().hasLow());
    EXPECT_FALSE(m.config().hasHigh());
    EXPECT_FALSE(m.config().hasMax());
    EXPECT_FALSE(m.atMax());
    EXPECT_FALSE(m.overHigh());
    EXPECT_EQ(m.excessHigh(), 0u);
    // With no protection, everything charged is reclaimable — this is
    // the proportional fan-out weight.
    EXPECT_EQ(m.reclaimable(), m.usage());
}

TEST(Memcg, WatermarkPredicates)
{
    KernelHarness h(16);
    MemcgConfig cfg;
    cfg.low = 2;
    cfg.high = 3;
    cfg.max = 5;
    Memcg m(0, cfg, *h.policy);

    std::vector<Pfn> pfns;
    for (int i = 0; i < 5; ++i) {
        pfns.push_back(h.frames.allocate(&h.space, h.base() + i, false));
        m.charge(h.frames.info(pfns.back()));
    }
    EXPECT_EQ(m.usage(), 5u);
    EXPECT_TRUE(m.atMax());
    EXPECT_TRUE(m.overHigh());
    EXPECT_EQ(m.excessHigh(), 2u);
    EXPECT_EQ(m.reclaimable(), 3u) << "usage minus memory.low";

    while (m.usage() > 2)
        m.uncharge(h.frames.info(pfns[m.usage() - 1]));
    EXPECT_FALSE(m.atMax());
    EXPECT_FALSE(m.overHigh());
    EXPECT_EQ(m.reclaimable(), 0u) << "fully under protection";
}

// ---- Multi-tenant behavior ---------------------------------------------

/** Actor sweeping one tenant's pages, reclaim_test-style. */
class TenantSweep : public ProbeActor
{
  public:
    TenantSweep(MultiKernelHarness &h, std::size_t tenant,
                std::uint64_t pages, int rounds)
        : ProbeActor(h.sim,
                     [this](ProbeActor &self) { this->run(self); }),
          h_(h), tenant_(tenant), pages_(pages), rounds_(rounds)
    {
    }

    std::uint64_t touches = 0;

  private:
    void
    run(ProbeActor &self)
    {
        while (round_ < rounds_) {
            while (i_ < pages_) {
                CostSink sink;
                const Outcome o =
                    h_.mm->access(self, *h_.spaces[tenant_],
                                  h_.base(tenant_) + i_, true, sink);
                if (o == Outcome::Blocked) {
                    self.block();
                    return;
                }
                ++touches;
                ++i_;
                if (touches % 32 == 0) {
                    self.yieldAfter(sink.total() + 1000);
                    return;
                }
            }
            i_ = 0;
            ++round_;
        }
        self.finish();
    }

    MultiKernelHarness &h_;
    std::size_t tenant_;
    std::uint64_t pages_;
    int rounds_;
    std::uint64_t i_ = 0;
    int round_ = 0;
};

TEST(MemcgBehavior, MemoryMaxReclaimsInlineAndSparesNeighbors)
{
    // Plenty of global memory (no watermark pressure), but tenant 0 is
    // capped at 40 frames against a 100-page working set. Its own
    // faults must run limit-reclaim inline; tenant 1 (which fits) must
    // see none of it.
    // Clock tenants: eviction is always possible, so the test pins
    // limit mechanics rather than MG-LRU's aging-gap tail (the sweep
    // spans less sim time than minAgingGap, which would starve an
    // MG-LRU lruvec of victims and let usage overshoot to the whole
    // working set by design).
    MultiKernelHarness::TenantSetup capped;
    capped.config.name = "capped";
    capped.config.max = 40;
    capped.kind = PolicyKind::Clock;
    MultiKernelHarness::TenantSetup roomy;
    roomy.config.name = "roomy";
    MultiKernelHarness h({capped, roomy}, /*nframes=*/256);

    TenantSweep s0(h, 0, 100, 2);
    TenantSweep s1(h, 1, 100, 2);
    s0.start();
    s1.start();
    ASSERT_TRUE(h.sim.runToCompletion(500000000));

    const MemcgStats &st0 = h.mm->memcg(0).stats();
    const MemcgStats &st1 = h.mm->memcg(1).stats();
    EXPECT_GT(st0.directReclaims, 0u) << "limit-reclaim ran inline";
    EXPECT_GT(st0.evictions, 0u);
    EXPECT_GT(st0.majorFaults, 0u) << "second round refaults";
    // Overshoot is allowed while victims sit under writeback (the
    // charge drops only when the frame frees), so peak usage is not
    // bounded by the limit; the steady state after writebacks drain
    // must be.
    h.sim.events().runUntil(h.sim.now() + secs(1));
    EXPECT_EQ(h.mm->writebacksInFlight(), 0u);
    EXPECT_LE(h.mm->memcg(0).usage(), 40u);
    EXPECT_EQ(st1.directReclaims, 0u) << "neighbor untouched";
    EXPECT_EQ(st1.evictions, 0u);
    EXPECT_EQ(st1.majorFaults, 0u);
    EXPECT_EQ(h.mm->lowBreaches(), 0u);
}

TEST(MemcgBehavior, MemoryHighThrottlesAndKswapdPullsBack)
{
    MultiKernelHarness::TenantSetup hot;
    hot.config.name = "hot";
    hot.config.high = 40;
    hot.kind = PolicyKind::Clock; // see MemoryMax test on why Clock
    MultiKernelHarness h({hot}, /*nframes=*/256);
    Kswapd kswapd(h.sim, *h.mm);
    h.mm->attachKswapd(&kswapd);
    kswapd.start();

    TenantSweep s0(h, 0, 100, 2);
    s0.start();
    ASSERT_TRUE(h.sim.runToCompletion(500000000));

    const MemcgStats &st = h.mm->memcg(0).stats();
    EXPECT_GT(st.throttleEvents, 0u) << "allocations over high paid";
    EXPECT_GT(st.peakUsage, 40u) << "the charge itself succeeds";
    // Targeted background reclaim keeps pulling the group back under
    // even though global free memory is fine.
    EXPECT_GT(st.evictions, 0u);
    h.sim.events().runUntil(h.sim.now() + secs(1));
    EXPECT_LE(h.mm->memcg(0).usage(), 40u);
}

TEST(MemcgBehavior, MemoryLowShieldsProtectedTenant)
{
    // Oversubscribed machine: two 100-page working sets on 96 frames.
    // Tenant 0's memory.low covers a 48-frame core; global reclaim
    // must take everything from tenant 1 once tenant 0 hides under
    // its protection. The auditor (every batch, hard-fail) enforces
    // that no round breaches the protection.
    MultiKernelHarness::TenantSetup shielded;
    shielded.config.name = "shielded";
    shielded.config.low = 48;
    MultiKernelHarness::TenantSetup victim;
    victim.config.name = "victim";
    MultiKernelHarness h({shielded, victim}, /*nframes=*/96);
    Kswapd kswapd(h.sim, *h.mm);
    h.mm->attachKswapd(&kswapd);
    kswapd.start();

    TenantSweep s0(h, 0, 100, 3);
    TenantSweep s1(h, 1, 100, 3);
    s0.start();
    s1.start();
    ASSERT_TRUE(h.sim.runToCompletion(500000000));

    const MemcgStats &shielded_st = h.mm->memcg(0).stats();
    const MemcgStats &victim_st = h.mm->memcg(1).stats();
    EXPECT_EQ(h.mm->lowBreaches(), 0u);
    EXPECT_GT(shielded_st.protectedSkips, 0u)
        << "reclaim rounds deliberately left the protected group alone";
    EXPECT_GT(victim_st.evictions, shielded_st.evictions)
        << "pressure lands on the unprotected tenant";
}

TEST(MemcgBehavior, AgingDaemonServesEveryMemcgsLruvec)
{
    // Regression: the pre-memcg daemon asked mm.policy() — the root
    // lruvec — so in a multi-memcg machine every other tenant's MG-LRU
    // never got a background aging pass. No memory pressure here (256
    // frames, 64-page working sets), so the daemon is the ONLY ager:
    // direct aging runs in reclaim contexts and there is no reclaim.
    MultiKernelHarness::TenantSetup a;
    a.config.name = "a";
    MultiKernelHarness::TenantSetup b;
    b.config.name = "b";
    MultiKernelHarness h({a, b}, /*nframes=*/256);
    AgingDaemon aging(h.sim, *h.mm, h.sim.forkRng("aging"));
    h.mm->attachAgingDaemon(&aging);
    aging.start();

    TenantSweep s0(h, 0, 64, 2);
    TenantSweep s1(h, 1, 64, 2);
    s0.start();
    s1.start();
    ASSERT_TRUE(h.sim.runToCompletion(500000000));
    EXPECT_EQ(h.mm->stats().evictions, 0u) << "no reclaim-path aging";
    // A fresh lruvec wants aging (fewer than two generations); give
    // the daemon simulated time to reach both tenants.
    h.sim.events().runUntil(h.sim.now() + secs(1));

    EXPECT_GT(h.policies[0]->stats().agingPasses, 0u);
    EXPECT_GT(h.policies[1]->stats().agingPasses, 0u)
        << "the daemon must walk every memcg's lruvec, not just root";
}

TEST(MemcgBehavior, StandardMetricsCoverEveryMemcg)
{
    // Regression: pre-memcg attachStandardMetrics registered
    // mm.policy() probes only, leaving other tenants' lruvecs
    // unsampled. Multi-memcg setups must scope each group's probes as
    // "memcg.<name>.*" and add a usage gauge per group.
    MultiKernelHarness::TenantSetup a;
    a.config.name = "a";
    MultiKernelHarness::TenantSetup b;
    b.config.name = "b";
    b.kind = PolicyKind::Clock;
    MultiKernelHarness h({a, b}, /*nframes=*/256);

    MetricsConfig cfg;
    cfg.mode = MetricsMode::Full;
    MetricsCollector collector(cfg);
    attachStandardMetrics(collector, *h.mm);
    collector.sampler().sampleOnce(h.sim.now());

    const auto &names = collector.sampler().series().names;
    const auto has = [&names](const std::string &n) {
        return std::find(names.begin(), names.end(), n) != names.end();
    };
    EXPECT_TRUE(has("memcg.a.usage"));
    EXPECT_TRUE(has("memcg.b.usage"));
    EXPECT_TRUE(has("memcg.a.mglru.min_seq"))
        << "tenant a's MG-LRU internals sampled under its prefix";
    EXPECT_TRUE(has("memcg.b.clock.active_pages") ||
                has("memcg.b.clock.inactive_pages"))
        << "tenant b's Clock internals sampled under its prefix";
    // Machine-wide probes keep their unprefixed names.
    EXPECT_TRUE(has("mm.free_frames"));
}

TEST(MemcgBehavior, SingleMemcgKeepsUnprefixedProbeNames)
{
    MultiKernelHarness::TenantSetup only;
    only.config.name = "only";
    MultiKernelHarness h({only}, /*nframes=*/64);

    MetricsConfig cfg;
    cfg.mode = MetricsMode::Full;
    MetricsCollector collector(cfg);
    attachStandardMetrics(collector, *h.mm);

    const auto &names = collector.sampler().series().names;
    const auto has = [&names](const std::string &n) {
        return std::find(names.begin(), names.end(), n) != names.end();
    };
    EXPECT_TRUE(has("mglru.min_seq"))
        << "historical names preserved for single-group setups";
}

TEST(MemcgBehavior, BalloonFramesStayUncharged)
{
    // background_noise's balloon allocations are housekeeping frames:
    // never policy-visible, never charged. Force the balloon to
    // reclaim (oversubscribed machine) so the multi-memcg fan-out and
    // the every-batch auditor both run with balloon frames live.
    MultiKernelHarness::TenantSetup a;
    a.config.name = "a";
    MultiKernelHarness::TenantSetup b;
    b.config.name = "b";
    MultiKernelHarness h({a, b}, /*nframes=*/96);

    TenantSweep s0(h, 0, 60, 2);
    TenantSweep s1(h, 1, 60, 2);
    s0.start();
    s1.start();
    ASSERT_TRUE(h.sim.runToCompletion(500000000));

    const std::uint32_t charged_before =
        h.mm->memcg(0).usage() + h.mm->memcg(1).usage();
    std::vector<Pfn> balloon;
    CostSink sink;
    h.mm->balloonAllocate(16, balloon, sink);
    ASSERT_FALSE(balloon.empty());
    for (const Pfn p : balloon)
        EXPECT_EQ(h.frames.info(p).memcg, kNoMemcg)
            << "balloon frame charged to a tenant";
    // Reclaim run by the balloon evicts tenant pages (uncharging
    // them); it must never ADD charges.
    EXPECT_LE(h.mm->memcg(0).usage() + h.mm->memcg(1).usage(),
              charged_before);
    h.mm->balloonRelease(balloon);
    EXPECT_EQ(h.auditor->audit().violations.size(), 0u);
}

} // namespace
} // namespace pagesim
