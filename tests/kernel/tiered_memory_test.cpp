/**
 * @file
 * Tests for the TPP-style tiered-memory extension: demotion instead
 * of swap, slow-tier access latency, promotion of hot pages, slow-tier
 * overflow to swap, and writeback remap back into the slow tier.
 */

#include <gtest/gtest.h>

#include "kernel_test_util.hh"

namespace pagesim
{
namespace
{

using Outcome = MemoryManager::AccessOutcome;

/** A harness with a slow tier attached. */
struct TieredHarness : KernelHarness
{
    explicit
    TieredHarness(std::uint32_t fast = 32, std::uint32_t slow = 16)
        : KernelHarness(fast, 512)
    {
        MmConfig cfg = config;
        cfg.tier.slowFrames = slow;
        cfg.tier.promoteThreshold = 2;
        cfg.reclaimBatch = 8; // keep one batch within the slow tier
        cfg.directReclaimBelow = 0; // reclaim only when truly empty
        config = cfg;
        mm = std::make_unique<MemoryManager>(sim, frames, *swap,
                                             *policy, cfg);
        // The base-class auditor was bound to the replaced manager;
        // re-attach to the tiered one.
        auditor = std::make_unique<MmAuditor>(
            *mm, std::vector<const AddressSpace *>{&space});
        auditor->installPeriodic(/*hard_fail=*/true);
    }
};

/** Populate @p n fast-tier pages and clear their accessed bits. */
void
fill(TieredHarness &h, std::uint64_t n)
{
    ProbeActor probe(h.sim, [&](ProbeActor &self) {
        CostSink sink;
        for (Vpn v = h.base(); v < h.base() + n; ++v) {
            const Outcome o =
                h.mm->access(self, h.space, v, true, sink);
            if (o == Outcome::Blocked) {
                self.block();
                return;
            }
            h.space.table().clearAccessed(v);
        }
        self.finish();
    });
    probe.start();
    ASSERT_TRUE(h.sim.runToCompletion(20000000));
}

TEST(TieredMemory, ReclaimDemotesInsteadOfSwapping)
{
    TieredHarness h;
    fill(h, 24);
    CostSink sink;
    h.mm->reclaimBatch(sink, true);
    h.sim.events().run();
    EXPECT_GT(h.mm->tierStats().demotions, 0u);
    EXPECT_EQ(h.device->stats().writes, 0u)
        << "demotion is a migration, not swap I/O";
    EXPECT_GT(h.mm->slowFrames().usedFrames(), 0u);
    // Demoted pages remain present (mapped) in their PTEs.
    std::uint64_t slow_present = 0;
    for (Vpn v = h.base(); v < h.base() + 24; ++v) {
        const auto pte = h.space.table().at(v);
        if (pte.present() && pte.slow())
            ++slow_present;
    }
    EXPECT_EQ(slow_present, h.mm->tierStats().demotions);
}

TEST(TieredMemory, SlowAccessIsHitWithLatency)
{
    TieredHarness h;
    fill(h, 24);
    CostSink rsink;
    h.mm->reclaimBatch(rsink, true);
    // Find a demoted page.
    Vpn slow_vpn = 0;
    for (Vpn v = h.base(); v < h.base() + 24; ++v)
        if (h.space.table().at(v).slow())
            slow_vpn = v;
    ASSERT_NE(slow_vpn, 0u);

    ProbeActor probe(h.sim, [&](ProbeActor &self) {
        CostSink sink;
        const Outcome o =
            h.mm->access(self, h.space, slow_vpn, false, sink);
        EXPECT_EQ(o, Outcome::Hit) << "slow tier access is no fault";
        EXPECT_GE(sink.total(), h.config.tier.slowAccessLatency);
        self.finish();
    });
    probe.start();
    EXPECT_TRUE(h.sim.runToCompletion());
    EXPECT_GT(h.mm->tierStats().slowHits, 0u);
    EXPECT_EQ(h.mm->stats().majorFaults, 0u);
}

TEST(TieredMemory, HotSlowPagesGetPromoted)
{
    TieredHarness h;
    fill(h, 24);
    CostSink rsink;
    h.mm->reclaimBatch(rsink, true);
    Vpn slow_vpn = 0;
    for (Vpn v = h.base(); v < h.base() + 24; ++v)
        if (h.space.table().at(v).slow())
            slow_vpn = v;
    ASSERT_NE(slow_vpn, 0u);

    ProbeActor probe(h.sim, [&](ProbeActor &self) {
        CostSink sink;
        // promoteThreshold = 2: two touches bring it home.
        h.mm->access(self, h.space, slow_vpn, false, sink);
        h.mm->access(self, h.space, slow_vpn, false, sink);
        self.finish();
    });
    probe.start();
    EXPECT_TRUE(h.sim.runToCompletion());
    EXPECT_GT(h.mm->tierStats().promotions, 0u);
    const auto pte = h.space.table().at(slow_vpn);
    EXPECT_TRUE(pte.present());
    EXPECT_FALSE(pte.slow()) << "promoted back to fast memory";
}

TEST(TieredMemory, SlowTierOverflowsToSwap)
{
    TieredHarness h(32, 8); // tiny slow tier
    fill(h, 30);
    CostSink sink;
    // Repeated reclaim pushes more pages than the slow tier holds.
    for (int i = 0; i < 4; ++i) {
        h.mm->reclaimBatch(sink, true);
        h.sim.events().run();
    }
    EXPECT_GT(h.mm->tierStats().slowEvictions, 0u)
        << "FIFO tail of the slow tier goes to swap";
    EXPECT_GT(h.device->stats().writes, 0u);
    EXPECT_LE(h.mm->slowFrames().usedFrames(), 8u);
}

TEST(TieredMemory, DisabledTierKeepsLegacyBehavior)
{
    KernelHarness h(32, 512); // plain harness: tier.slowFrames == 0
    ProbeActor probe(h.sim, [&](ProbeActor &self) {
        CostSink sink;
        for (Vpn v = h.base(); v < h.base() + 28; ++v) {
            h.mm->access(self, h.space, v, true, sink);
            h.space.table().clearAccessed(v);
        }
        self.finish();
    });
    probe.start();
    ASSERT_TRUE(h.sim.runToCompletion(20000000));
    CostSink sink;
    h.mm->reclaimBatch(sink, true);
    h.sim.events().run();
    EXPECT_EQ(h.mm->tierStats().demotions, 0u);
    EXPECT_GT(h.device->stats().writes, 0u) << "straight to swap";
}

TEST(TieredMemory, EndToEndUnderPressure)
{
    // A sweep larger than fast+slow: all three levels in play.
    TieredHarness h(48, 32);
    struct
    {
        int round = 0;
        Vpn v = 0;
    } st;
    ProbeActor probe(h.sim, [&, &round = st.round,
                             &v = st.v](ProbeActor &self) {
        CostSink sink;
        while (round < 3) {
            while (v < 120) {
                // Cold sweep page (distance > fast+slow: overflows
                // the slow tier) ...
                const Outcome o = h.mm->access(
                    self, h.space, h.base() + v, true, sink);
                if (o == Outcome::Blocked) {
                    self.block();
                    return;
                }
                // ... plus a short-distance warm page that gets
                // demoted and re-touched while still in the slow
                // tier.
                const Outcome o2 = h.mm->access(
                    self, h.space, h.base() + 200 + (v % 24), false,
                    sink);
                if (o2 == Outcome::Blocked) {
                    self.block();
                    return;
                }
                ++v;
                if (sink.total() > usecs(50)) {
                    self.yieldAfter(sink.take());
                    return;
                }
            }
            v = 0;
            ++round;
        }
        self.finish();
    });
    probe.start();
    ASSERT_TRUE(h.sim.runToCompletion(100000000));
    EXPECT_GT(h.mm->tierStats().demotions, 0u);
    EXPECT_GT(h.mm->tierStats().slowEvictions, 0u);
    EXPECT_GT(h.mm->tierStats().slowHits, 0u);
    // Frame conservation across all three levels.
    EXPECT_LE(h.frames.usedFrames(), h.frames.totalFrames());
    EXPECT_LE(h.mm->slowFrames().usedFrames(), 32u);
}

} // namespace
} // namespace pagesim
