/**
 * @file
 * Parameterized sweep over (policy x swap medium): full small-scale
 * trials for every combination, checking cross-cutting invariants the
 * individual unit tests can't see — I/O accounting against the swap
 * device, watermark discipline, latency sanity, and monotonicity in
 * capacity.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "harness/experiment.hh"

namespace pagesim
{
namespace
{

using Cell = std::tuple<PolicyKind, SwapKind>;

class GridSweep : public ::testing::TestWithParam<Cell>
{
};

TEST_P(GridSweep, TrialInvariantsHold)
{
    const auto [policy, swap] = GetParam();
    for (WorkloadKind wk :
         {WorkloadKind::Tpch, WorkloadKind::YcsbA}) {
        ExperimentConfig cfg;
        cfg.workload = wk;
        cfg.policy = policy;
        cfg.swap = swap;
        cfg.scale = ScalePreset::Small;
        const TrialResult t = runTrial(cfg, 21);
        const std::string label = cfg.label();

        EXPECT_GT(t.runtimeNs, 0u) << label;
        // Device accounting: every major fault required a device read
        // unless it was satisfied by a writeback remap.
        EXPECT_GE(t.swap.reads + t.kernel.writebackRemaps,
                  t.majorFaults)
            << label;
        // Device writes == dirty writebacks exactly.
        EXPECT_EQ(t.swap.writes, t.kernel.dirtyWritebacks) << label;
        // Eviction split is exhaustive.
        EXPECT_EQ(t.kernel.cleanDrops + t.kernel.dirtyWritebacks,
                  t.kernel.evictions)
            << label;
        // Policy shadows: eviction count from the policy matches the
        // kernel's, give or take balloon frames (never policy-owned).
        EXPECT_EQ(t.policy.evicted, t.kernel.evictions) << label;
        // Scanning was never free under pressure.
        EXPECT_GT(t.policy.ptesScanned + t.policy.rmapWalks, 0u)
            << label;
    }
}

TEST_P(GridSweep, CapacityMonotonicity)
{
    const auto [policy, swap] = GetParam();
    ExperimentConfig cfg;
    cfg.workload = WorkloadKind::Tpch;
    cfg.policy = policy;
    cfg.swap = swap;
    cfg.scale = ScalePreset::Small;

    cfg.capacityRatio = 0.5;
    const TrialResult tight = runTrial(cfg, 33);
    cfg.capacityRatio = 0.95;
    const TrialResult roomy = runTrial(cfg, 33);
    EXPECT_GT(tight.majorFaults, roomy.majorFaults) << cfg.label();
    EXPECT_GE(tight.kernel.evictions, roomy.kernel.evictions)
        << cfg.label();
}

INSTANTIATE_TEST_SUITE_P(
    PolicyBySwap, GridSweep,
    ::testing::Combine(::testing::Values(PolicyKind::Clock,
                                         PolicyKind::MgLru,
                                         PolicyKind::Gen14,
                                         PolicyKind::ScanAll,
                                         PolicyKind::ScanNone,
                                         PolicyKind::ScanRand),
                       ::testing::Values(SwapKind::Ssd,
                                         SwapKind::Zram)),
    [](const ::testing::TestParamInfo<Cell> &info) {
        std::string name =
            policyKindName(std::get<0>(info.param)) + "_" +
            swapKindName(std::get<1>(info.param));
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace pagesim
