#include <gtest/gtest.h>

#include "kernel/background_noise.hh"
#include "kernel_test_util.hh"

namespace pagesim
{
namespace
{

TEST(BackgroundNoise, GrabsAndReleasesFrames)
{
    KernelHarness h(256, 1024);
    NoiseConfig cfg;
    cfg.idleMean = usecs(100);
    cfg.grabFracLo = 0.05;
    cfg.grabFracHi = 0.10;
    cfg.holdLo = usecs(50);
    cfg.holdHi = usecs(100);
    BackgroundNoise noise(h.sim, *h.mm, h.sim.forkRng("n"), cfg);
    noise.start();
    h.sim.events().runUntil(msecs(20));
    EXPECT_GT(noise.bursts(), 10u);
    EXPECT_GT(noise.framesGrabbed(), 0u);
    // After the run settles, everything is released (no leak): drain
    // remaining events, then verify free count.
    h.sim.events().runUntil(h.sim.now() + msecs(5));
    EXPECT_GE(h.frames.freeFrames() + 30, h.frames.totalFrames())
        << "at most one in-flight burst may be held";
}

TEST(BackgroundNoise, DisabledDaemonDoesNothing)
{
    KernelHarness h(64, 256);
    NoiseConfig cfg;
    cfg.enabled = false;
    BackgroundNoise noise(h.sim, *h.mm, h.sim.forkRng("n"), cfg);
    noise.start();
    h.sim.events().runUntil(msecs(50));
    EXPECT_EQ(noise.bursts(), 0u);
    EXPECT_EQ(h.frames.freeFrames(), h.frames.totalFrames());
}

TEST(BackgroundNoise, BalloonNeverStealsBeyondAvailable)
{
    KernelHarness h(32, 256);
    CostSink sink;
    std::vector<Pfn> held;
    h.mm->balloonAllocate(1000, held, sink); // far more than exists
    EXPECT_LE(held.size(), 32u);
    EXPECT_EQ(h.frames.freeFrames(), 32u - held.size());
    h.mm->balloonRelease(held);
    EXPECT_EQ(h.frames.freeFrames(), 32u);
}

TEST(BackgroundNoise, BalloonTriggersReclaimUnderPressure)
{
    KernelHarness h(64, 256);
    // Fill memory with workload pages first.
    ProbeActor probe(h.sim, [&](ProbeActor &self) {
        CostSink sink;
        for (Vpn v = h.base(); v < h.base() + 60; ++v) {
            h.mm->access(self, h.space, v, true, sink);
            h.space.table().clearAccessed(v);
        }
        self.finish();
    });
    probe.start();
    ASSERT_TRUE(h.sim.runToCompletion(10000000));

    CostSink sink;
    std::vector<Pfn> held;
    h.mm->balloonAllocate(20, held, sink);
    h.sim.events().run(100000);
    EXPECT_GT(held.size(), 0u);
    EXPECT_GT(h.mm->stats().evictions, 0u)
        << "the balloon must push workload pages out";
    h.mm->balloonRelease(held);
}

} // namespace
} // namespace pagesim
