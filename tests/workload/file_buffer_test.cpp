#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/file_buffer_workload.hh"

namespace pagesim
{
namespace
{

FileBufferConfig
smallConfig()
{
    FileBufferConfig cfg;
    cfg.anonPages = 128;
    cfg.streamChunkPages = 256;
    cfg.hotFilePages = 32;
    cfg.threads = 2;
    cfg.rounds = 3;
    cfg.hotReadsPerRound = 200;
    return cfg;
}

TEST(FileBuffer, FootprintCoversAllRounds)
{
    FileBufferWorkload wl(smallConfig());
    EXPECT_EQ(wl.footprintPages(), 128u + 256u * 3 + 32u);
}

TEST(FileBuffer, StreamPagesAreReadOnce)
{
    FileBufferWorkload wl(smallConfig());
    AddressSpace space(0);
    WorkloadContext ctx;
    ctx.space = &space;
    wl.build(ctx);

    // Collect fd-touches on the stream VMA across both threads: every
    // stream page must be touched exactly once over the whole run.
    const Vma *stream = nullptr;
    for (const auto &vma : space.vmas())
        if (vma.name == "fb.stream")
            stream = &vma;
    ASSERT_NE(stream, nullptr);

    std::map<Vpn, int> touches;
    for (unsigned tid = 0; tid < 2; ++tid) {
        auto s = wl.stream(tid);
        Op op;
        while (s->next(op)) {
            if (op.kind == Op::Kind::FdTouch &&
                stream->contains(op.vpn))
                ++touches[op.vpn];
        }
    }
    EXPECT_EQ(touches.size(), stream->npages)
        << "every stream page read";
    for (const auto &[vpn, count] : touches)
        EXPECT_EQ(count, 1) << "read-once data must be read once";
}

TEST(FileBuffer, HotFileIsReReadViaFd)
{
    FileBufferWorkload wl(smallConfig());
    AddressSpace space(0);
    WorkloadContext ctx;
    ctx.space = &space;
    wl.build(ctx);
    const Vma *hot = nullptr;
    for (const auto &vma : space.vmas())
        if (vma.name == "fb.hotfile")
            hot = &vma;
    ASSERT_NE(hot, nullptr);
    EXPECT_TRUE(hot->file);

    auto s = wl.stream(0);
    Op op;
    std::uint64_t hot_touches = 0;
    while (s->next(op))
        if (op.kind == Op::Kind::FdTouch && hot->contains(op.vpn))
            ++hot_touches;
    EXPECT_GE(hot_touches, 3u * 200u)
        << "hot region hammered every round";
}

TEST(FileBuffer, AnonPagesUsePteAccesses)
{
    FileBufferWorkload wl(smallConfig());
    AddressSpace space(0);
    WorkloadContext ctx;
    ctx.space = &space;
    wl.build(ctx);
    const Vma *anon = nullptr;
    for (const auto &vma : space.vmas())
        if (vma.name == "fb.anon")
            anon = &vma;
    ASSERT_NE(anon, nullptr);
    EXPECT_FALSE(anon->file);

    auto s = wl.stream(1);
    Op op;
    bool saw_anon_touch = false;
    while (s->next(op)) {
        if (anon->contains(op.vpn)) {
            EXPECT_EQ(op.kind, Op::Kind::Touch)
                << "anon accesses go through PTEs, not fd";
            saw_anon_touch = true;
        }
    }
    EXPECT_TRUE(saw_anon_touch);
}

TEST(FileBuffer, RoundsAreBarrierSeparated)
{
    FileBufferWorkload wl(smallConfig());
    AddressSpace space(0);
    WorkloadContext ctx;
    ctx.space = &space;
    wl.build(ctx);
    auto s = wl.stream(0);
    Op op;
    int barriers = 0;
    while (s->next(op))
        if (op.kind == Op::Kind::Barrier)
            ++barriers;
    EXPECT_EQ(barriers, 1 + 3) << "warmup barrier + one per round";
    EXPECT_NE(wl.barrier(0), nullptr);
}

} // namespace
} // namespace pagesim
