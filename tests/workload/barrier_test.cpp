#include <gtest/gtest.h>

#include "sim/simulation.hh"
#include "workload/barrier.hh"

namespace pagesim
{
namespace
{

/** Actor that alternates work and barrier laps. */
class BarrierActor : public SimActor
{
  public:
    BarrierActor(Simulation &sim, SimBarrier &barrier,
                 SimDuration work, int laps)
        : SimActor(sim, "b", true), barrier_(barrier), work_(work),
          laps_(laps)
    {
    }

    std::vector<SimTime> passTimes;

  protected:
    void
    step() override
    {
        if (pendingPass_) {
            // Just released from (or passed) the barrier.
            pendingPass_ = false;
            passTimes.push_back(now());
        }
        if (phase_ == Phase::Work) {
            if (laps_-- == 0) {
                finish();
                return;
            }
            phase_ = Phase::Arrive;
            yieldAfter(work_);
            return;
        }
        // Arrive at the barrier.
        phase_ = Phase::Work;
        pendingPass_ = true;
        if (!barrier_.arrive(*this)) {
            block(); // wake() records the pass on the next step
            return;
        }
        yieldAfter(0); // last arriver: continue immediately
    }

  private:
    enum class Phase
    {
        Work,
        Arrive,
    };

    SimBarrier &barrier_;
    SimDuration work_;
    int laps_;
    Phase phase_ = Phase::Work;
    bool pendingPass_ = false;
};

TEST(SimBarrier, ReleasesAtStragglerArrival)
{
    Simulation sim(8);
    SimBarrier barrier(3);
    BarrierActor a(sim, barrier, 10, 1);
    BarrierActor b(sim, barrier, 100, 1);
    BarrierActor c(sim, barrier, 500, 1); // the straggler
    a.start();
    b.start();
    c.start();
    EXPECT_TRUE(sim.runToCompletion());
    ASSERT_EQ(a.passTimes.size(), 1u);
    ASSERT_EQ(c.passTimes.size(), 1u);
    EXPECT_EQ(a.passTimes[0], 500u);
    EXPECT_EQ(b.passTimes[0], 500u);
    EXPECT_EQ(c.passTimes[0], 500u);
}

TEST(SimBarrier, ReusableAcrossGenerations)
{
    Simulation sim(8);
    SimBarrier barrier(2);
    BarrierActor a(sim, barrier, 10, 3);
    BarrierActor b(sim, barrier, 30, 3);
    a.start();
    b.start();
    EXPECT_TRUE(sim.runToCompletion());
    EXPECT_EQ(barrier.generation(), 3u);
    EXPECT_EQ(barrier.arrived(), 0u);
    // Each lap gated by the slower actor: passes at 30, 60, 90.
    ASSERT_EQ(a.passTimes.size(), 3u);
    EXPECT_EQ(a.passTimes[0], 30u);
    EXPECT_EQ(a.passTimes[1], 60u);
    EXPECT_EQ(a.passTimes[2], 90u);
}

TEST(SimBarrier, SinglePartyPassesThrough)
{
    Simulation sim(2);
    SimBarrier barrier(1);
    BarrierActor a(sim, barrier, 5, 2);
    a.start();
    EXPECT_TRUE(sim.runToCompletion());
    EXPECT_EQ(barrier.generation(), 2u);
    EXPECT_EQ(a.passTimes.size(), 2u);
}

TEST(SimBarrier, PartiesAccessors)
{
    SimBarrier barrier(5);
    EXPECT_EQ(barrier.parties(), 5u);
    EXPECT_EQ(barrier.arrived(), 0u);
    EXPECT_EQ(barrier.generation(), 0u);
}

} // namespace
} // namespace pagesim
