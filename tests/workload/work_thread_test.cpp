#include <gtest/gtest.h>

#include <memory>

#include "kernel/memory_manager.hh"
#include "policy/policy_factory.hh"
#include "sim/simulation.hh"
#include "swap/ssd_device.hh"
#include "swap/swap_manager.hh"
#include "workload/access_pattern.hh"
#include "workload/work_thread.hh"

namespace pagesim
{
namespace
{

/** Minimal workload wrapping explicit per-thread segment lists. */
class ScriptWorkload : public Workload
{
  public:
    ScriptWorkload(std::vector<std::vector<Segment>> programs,
                   unsigned barrier_parties)
        : programs_(std::move(programs)),
          barrier_(std::make_unique<SimBarrier>(barrier_parties))
    {
    }

    const std::string &name() const override { return name_; }
    std::uint64_t footprintPages() const override { return 256; }
    unsigned
    numThreads() const override
    {
        return static_cast<unsigned>(programs_.size());
    }
    void build(WorkloadContext &) override {}

    std::unique_ptr<OpStream>
    stream(unsigned tid) override
    {
        return std::make_unique<PatternStream>(programs_[tid]);
    }

    SimBarrier *barrier(std::uint32_t) override { return barrier_.get(); }

    void
    recordRequest(std::uint32_t klass, SimDuration latency) override
    {
        requests.emplace_back(klass, latency);
    }

    void
    phaseReached(unsigned tid, std::uint32_t id, SimTime now) override
    {
        phases.emplace_back(tid, id);
        lastPhaseTime = now;
    }

    std::vector<std::pair<std::uint32_t, SimDuration>> requests;
    std::vector<std::pair<unsigned, std::uint32_t>> phases;
    SimTime lastPhaseTime = 0;

  private:
    std::vector<std::vector<Segment>> programs_;
    std::string name_ = "script";
    std::unique_ptr<SimBarrier> barrier_;
};

struct ThreadHarness
{
    Simulation sim{4, 11};
    FrameTable frames;
    AddressSpace space{0};
    SsdSwapDevice device;
    SwapManager swap;
    MmConfig config;
    std::unique_ptr<ReplacementPolicy> policy;
    std::unique_ptr<MemoryManager> mm;

    explicit
    ThreadHarness(std::uint32_t nframes = 512)
        : frames(nframes),
          device(sim.events(), sim.forkRng("ssd")),
          swap(device, 4096)
    {
        space.map("w", 1024);
        config.totalFrames = nframes;
        config.deriveWatermarks();
        policy = makePolicy(PolicyKind::MgLru, frames, {&space},
                            config.costs, sim.forkRng("p"), {},
                            &sim.events());
        mm = std::make_unique<MemoryManager>(sim, frames, swap,
                                             *policy, config);
    }

    Vpn base() const { return space.vmas().front().start; }
};

TEST(WorkThread, ExecutesSeqTouchesAndFinishes)
{
    ThreadHarness h;
    ScriptWorkload wl({{SeqTouch{h.base(), 10, true, false, 100}}}, 1);
    WorkThread t(h.sim, *h.mm, wl, h.space, 0);
    t.start();
    EXPECT_TRUE(h.sim.runToCompletion());
    EXPECT_TRUE(t.finished());
    EXPECT_EQ(t.threadStats().touches, 10u);
    // All 10 pages resident.
    for (Vpn v = h.base(); v < h.base() + 10; ++v)
        EXPECT_TRUE(h.space.table().at(v).present());
    EXPECT_GT(t.cpuWork(), 0u);
}

TEST(WorkThread, ChunkingYieldsPeriodically)
{
    ThreadHarness h;
    // 100 touches x 10us compute = 1ms >> 50us chunk: many yields.
    ScriptWorkload wl(
        {{SeqTouch{h.base(), 100, false, false, usecs(10)}}}, 1);
    WorkThread t(h.sim, *h.mm, wl, h.space, 0);
    t.start();
    EXPECT_TRUE(h.sim.runToCompletion());
    // Total charged work ~ 100*10us + fault costs.
    EXPECT_GE(t.cpuWork(), usecs(1000));
    // The run took at least that long in wall time too.
    EXPECT_GE(h.sim.now(), usecs(1000));
}

TEST(WorkThread, BarrierSynchronizesThreads)
{
    ThreadHarness h;
    std::vector<std::vector<Segment>> programs(2);
    // Thread 0: quick, then barrier, then phase 9.
    programs[0] = {SeqTouch{h.base(), 1, false, false, 100},
                   BarrierSeg{0}, PhaseSeg{9}};
    // Thread 1: slow.
    programs[1] = {SeqTouch{h.base() + 100, 1, false, false,
                            usecs(40)},
                   ComputeSeg{usecs(400)}, BarrierSeg{0}};
    ScriptWorkload wl(std::move(programs), 2);
    WorkThread t0(h.sim, *h.mm, wl, h.space, 0);
    WorkThread t1(h.sim, *h.mm, wl, h.space, 1);
    t0.start();
    t1.start();
    EXPECT_TRUE(h.sim.runToCompletion());
    ASSERT_EQ(wl.phases.size(), 1u);
    // Phase 9 fires only after the slow thread arrived (~440us).
    EXPECT_GE(wl.lastPhaseTime, usecs(400));
    EXPECT_EQ(t0.threadStats().barriersPassed, 1u);
}

TEST(WorkThread, RequestLatencyCoversFaultTime)
{
    ThreadHarness h;
    // Swap out the target page first so the request major-faults.
    const auto pte = h.space.table().at(h.base() + 5);
    // lint:pte-direct-ok(seeds a swapped-out PTE from the never-mapped
    // state; no tracked bitmap is touched and the PageTable mutator
    // asserts present())
    pte.unmapToSwap(h.swap.allocate(), 0);

    // A measured request around one touch of the swapped page, with
    // explicit request markers via a custom stream.
    class ReqStream : public OpStream
    {
      public:
        explicit ReqStream(Vpn vpn) : vpn_(vpn) {}

        bool
        next(Op &op) override
        {
            switch (i_++) {
              case 0:
                op = Op::makeRequestStart(0);
                return true;
              case 1:
                op = Op::makeTouch(vpn_, false);
                return true;
              case 2:
                op = Op::makeRequestEnd(0);
                return true;
              default:
                return false;
            }
        }

      private:
        Vpn vpn_;
        int i_ = 0;
    };
    class ReqWorkload : public ScriptWorkload
    {
      public:
        explicit ReqWorkload(Vpn vpn)
            : ScriptWorkload({{}}, 1), vpn_(vpn)
        {
        }

        std::unique_ptr<OpStream>
        stream(unsigned) override
        {
            return std::make_unique<ReqStream>(vpn_);
        }

      private:
        Vpn vpn_;
    };

    ReqWorkload wl(h.base() + 5);
    WorkThread t(h.sim, *h.mm, wl, h.space, 0);
    t.start();
    EXPECT_TRUE(h.sim.runToCompletion());
    ASSERT_EQ(wl.requests.size(), 1u);
    // The request latency includes the swap-in service time.
    EXPECT_GE(wl.requests[0].second, msecs(1));
    EXPECT_EQ(t.threadStats().blockedFaults, 1u);
}

TEST(WorkThread, FdTouchReachesPolicy)
{
    ThreadHarness h;
    h.space.map("file", 16, true);
    const Vpn fv = h.space.vmas()[1].start;
    ScriptWorkload wl({{SeqTouch{fv, 1, false, /*fd=*/true, 0},
                        SeqTouch{fv, 1, false, /*fd=*/true, 0},
                        SeqTouch{fv, 1, false, /*fd=*/true, 0}}},
                      1);
    WorkThread t(h.sim, *h.mm, wl, h.space, 0);
    t.start();
    EXPECT_TRUE(h.sim.runToCompletion());
    const Pfn pfn = h.space.table().at(fv).pfn();
    EXPECT_GT(h.frames.info(pfn).refs, 0u)
        << "fd accesses feed the tier machinery";
    EXPECT_FALSE(h.space.table().at(fv).accessed())
        << "fd accesses do not set the PTE accessed bit after the "
           "initial fault-in path";
}

} // namespace
} // namespace pagesim
