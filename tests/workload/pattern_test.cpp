#include <gtest/gtest.h>

#include <map>

#include "workload/access_pattern.hh"

namespace pagesim
{
namespace
{

std::vector<Op>
drain(PatternStream &s, std::size_t limit = 1u << 20)
{
    std::vector<Op> ops;
    Op op;
    while (ops.size() < limit && s.next(op))
        ops.push_back(op);
    return ops;
}

TEST(PatternStream, SeqTouchEmitsEveryPageInOrder)
{
    PatternStream s({SeqTouch{100, 5, true, false, 10}});
    const auto ops = drain(s);
    ASSERT_EQ(ops.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(ops[i].kind, Op::Kind::Touch);
        EXPECT_EQ(ops[i].vpn, 100 + i);
        EXPECT_TRUE(ops[i].write);
        EXPECT_EQ(ops[i].compute, 10u);
    }
}

TEST(PatternStream, EmptyStream)
{
    PatternStream s({});
    Op op;
    EXPECT_FALSE(s.next(op));
    EXPECT_FALSE(s.next(op)) << "end must be idempotent";
}

TEST(PatternStream, RandTouchStaysInSpan)
{
    RandTouch rt;
    rt.base = 1000;
    rt.span = 50;
    rt.count = 500;
    rt.seed = 3;
    PatternStream s({rt});
    const auto ops = drain(s);
    ASSERT_EQ(ops.size(), 500u);
    for (const Op &op : ops) {
        EXPECT_GE(op.vpn, 1000u);
        EXPECT_LT(op.vpn, 1050u);
    }
}

TEST(PatternStream, RandTouchDeterministicPerSeed)
{
    RandTouch rt;
    rt.base = 0;
    rt.span = 100;
    rt.count = 50;
    rt.seed = 42;
    PatternStream s1({rt}), s2({rt});
    const auto a = drain(s1), b = drain(s2);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].vpn, b[i].vpn);
}

TEST(PatternStream, ZipfRandTouchIsSkewed)
{
    RandTouch rt;
    rt.base = 0;
    rt.span = 1000;
    rt.count = 20000;
    rt.zipfTheta = 0.99;
    rt.scrambled = false;
    rt.seed = 5;
    PatternStream s({rt});
    std::map<Vpn, int> counts;
    Op op;
    while (s.next(op))
        ++counts[op.vpn];
    EXPECT_GT(counts[0], 1000) << "page 0 is the hot page";
}

TEST(PatternStream, IndexedTouchReplaysList)
{
    const std::vector<std::uint32_t> offsets{5, 1, 9, 1};
    PatternStream s({IndexedTouch{offsets.data(), offsets.size(), 200,
                                  false, 7}});
    const auto ops = drain(s);
    ASSERT_EQ(ops.size(), 4u);
    EXPECT_EQ(ops[0].vpn, 205u);
    EXPECT_EQ(ops[1].vpn, 201u);
    EXPECT_EQ(ops[2].vpn, 209u);
    EXPECT_EQ(ops[3].vpn, 201u);
}

TEST(PatternStream, MixedSegmentsInOrder)
{
    PatternStream s({
        ComputeSeg{123},
        SeqTouch{10, 2, false, false, 0},
        BarrierSeg{7},
        PhaseSeg{3},
    });
    const auto ops = drain(s);
    ASSERT_EQ(ops.size(), 5u);
    EXPECT_EQ(ops[0].kind, Op::Kind::Compute);
    EXPECT_EQ(ops[0].compute, 123u);
    EXPECT_EQ(ops[1].kind, Op::Kind::Touch);
    EXPECT_EQ(ops[2].kind, Op::Kind::Touch);
    EXPECT_EQ(ops[3].kind, Op::Kind::Barrier);
    EXPECT_EQ(ops[3].id, 7u);
    EXPECT_EQ(ops[4].kind, Op::Kind::Phase);
    EXPECT_EQ(ops[4].id, 3u);
}

TEST(PatternStream, FdTouchFlag)
{
    PatternStream s({SeqTouch{0, 1, false, /*fd=*/true, 0}});
    Op op;
    ASSERT_TRUE(s.next(op));
    EXPECT_EQ(op.kind, Op::Kind::FdTouch);
}

TEST(PatternStream, ZeroCountSegmentsSkipped)
{
    PatternStream s({SeqTouch{0, 0, false, false, 0},
                     SeqTouch{50, 1, false, false, 0}});
    const auto ops = drain(s);
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].vpn, 50u);
}

} // namespace
} // namespace pagesim
